// End-to-end pipelines mirroring the paper's experiments at reduced scale:
// dataset -> histogram -> index -> workload -> model-vs-measured, for both
// the text/edit-distance space (Fig. 3 setup) and clustered vectors
// (Figs. 1/2/4 setup), plus a miniature Section-4.1 tuning sweep.

#include <cmath>

#include <gtest/gtest.h>

#include "mcm/bench_util/experiment.h"
#include "mcm/cost/lmcm.h"
#include "mcm/cost/nmcm.h"
#include "mcm/cost/tuner.h"
#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/distribution/homogeneity.h"
#include "mcm/metric/counted_metric.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/check/check_mtree.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;
using StrTraits = StringTraits<>;

TEST(Integration, TextPipelineMatchesFig3Setup) {
  // 25-bin histogram, radius-3 range queries, edit distance — Fig. 3 at
  // reduced vocabulary scale.
  const auto words = GenerateKeywords(4000, 42);
  MTreeOptions options;  // 4 KB nodes, paper defaults.
  auto tree = MTree<StrTraits>::BulkLoad(words, EditDistanceMetric{}, options);
  ASSERT_TRUE(check::CheckMTree(tree).ok());

  EstimatorOptions eo;
  eo.num_bins = 25;
  eo.d_plus = 25.0;
  const auto hist =
      EstimateDistanceDistribution(words, EditDistanceMetric{}, eo);
  const auto stats = tree.CollectStats(25.0);
  const NodeBasedCostModel nmcm(hist, stats);
  const LevelBasedCostModel lmcm(hist, stats);

  const auto queries = GenerateKeywordQueries(300, 42);
  const auto measured = MeasureRange(tree, queries, 3.0);

  // Paper: errors usually below 10%, rarely 15%. Assert 25% for stability.
  EXPECT_NEAR(nmcm.RangeNodes(3.0), measured.avg_nodes,
              0.25 * measured.avg_nodes);
  EXPECT_NEAR(nmcm.RangeDistances(3.0), measured.avg_dists,
              0.25 * measured.avg_dists);
  EXPECT_NEAR(lmcm.RangeNodes(3.0), measured.avg_nodes,
              0.30 * measured.avg_nodes);
  EXPECT_NEAR(lmcm.RangeDistances(3.0), measured.avg_dists,
              0.30 * measured.avg_dists);
}

TEST(Integration, TextHomogeneityIsHigh) {
  // Section 2.1: the HV index of the keyword datasets is close to 1.
  const auto words = GenerateKeywords(3000, 42);
  HvOptions ho;
  ho.d_plus = 25.0;
  ho.num_viewpoints = 60;
  ho.num_targets = 500;
  const auto hv = EstimateHomogeneity(words, EditDistanceMetric{}, ho);
  EXPECT_GT(hv.hv, 0.93);
}

TEST(Integration, ClusteredVectorNnEstimatorsOrdering) {
  // Fig. 2's three estimators: L-MCM, range(E[nn]), range(r(1)) — all must
  // land in the same ballpark as the measured NN cost.
  const size_t n = 8000, D = 15;
  const auto data = GenerateClustered(n, D, 42);
  MTreeOptions options;
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const auto stats = tree.CollectStats(1.0);
  const LevelBasedCostModel lmcm(hist, stats);

  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 200, D, 42);
  const auto measured = MeasureKnn(tree, queries, 1);

  const double est_integral = lmcm.NnNodes(1);
  const double enn = lmcm.nn_model().ExpectedNnDistance(1);
  const double est_range_enn = lmcm.RangeNodes(enn);
  const double r1 = lmcm.nn_model().RadiusForExpectedObjects(1.0);
  const double est_range_r1 = lmcm.RangeNodes(r1);

  for (double est : {est_integral, est_range_enn, est_range_r1}) {
    EXPECT_GT(est, 0.3 * measured.avg_nodes);
    EXPECT_LT(est, 2.0 * measured.avg_nodes);
  }
  // The integral estimator is the principled one; it should be the closest
  // or nearly so.
  EXPECT_NEAR(est_integral, measured.avg_nodes, 0.30 * measured.avg_nodes);
}

TEST(Integration, RadiusSweepTracksMeasurement) {
  // Fig. 4 setup: clustered D = 20, variable radius.
  const size_t n = 6000, D = 20;
  const auto data = GenerateClustered(n, D, 7);
  MTreeOptions options;
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const NodeBasedCostModel nmcm(hist, tree.CollectStats(1.0));
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 100, D, 7);
  for (double rq : {0.15, 0.3, 0.45}) {
    const auto measured = MeasureRange(tree, queries, rq);
    EXPECT_NEAR(nmcm.RangeNodes(rq), measured.avg_nodes,
                0.25 * measured.avg_nodes + 1.0)
        << "rq=" << rq;
    EXPECT_NEAR(nmcm.RangeDistances(rq), measured.avg_dists,
                0.25 * measured.avg_dists + 5.0)
        << "rq=" << rq;
  }
}

TEST(Integration, MiniatureTuningSweepHasInteriorCpuMinimum) {
  // Section 4.1 at small scale: CPU cost (distance computations) should not
  // be monotone in node size — large nodes waste distance computations.
  const size_t n = 5000, D = 5;
  const auto data = GenerateClustered(n, D, 11);
  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const double rq = std::pow(0.01, 1.0 / D) / 2.0;

  std::vector<NodeSizeSample> samples;
  for (size_t ns : {512u, 2048u, 8192u, 32768u}) {
    MTreeOptions options;
    options.node_size_bytes = ns;
    auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
    const NodeBasedCostModel model(hist, tree.CollectStats(1.0));
    samples.push_back({ns, model.RangeDistances(rq), model.RangeNodes(rq)});
  }
  // I/O (node reads) decreases with node size.
  for (size_t i = 1; i < samples.size(); ++i) {
    EXPECT_LT(samples[i].nodes, samples[i - 1].nodes);
  }
  // CPU at the largest size exceeds the best CPU seen (marked minimum).
  double best_dists = samples[0].dists;
  for (const auto& s : samples) best_dists = std::min(best_dists, s.dists);
  EXPECT_GT(samples.back().dists, best_dists);

  const TuningResult tuned = ChooseNodeSize(DiskCostParameters{}, samples);
  EXPECT_GT(tuned.best_node_size_bytes, 512u);  // Not the tiniest node.
}

TEST(Integration, CountedMetricAgreesWithQueryStats) {
  // The CountedMetric wrapper and QueryStats must report the same CPU cost.
  using CountedTraits = VectorTraits<CountedMetric<LInfDistance>>;
  const auto data = GenerateClustered(1000, 6, 13);
  CountedMetric<LInfDistance> metric;
  MTreeOptions options;
  auto tree = MTree<CountedTraits>::BulkLoad(data, metric, options);
  metric.Reset();
  QueryStats stats;
  tree.RangeSearch(data[0], 0.2, &stats);
  EXPECT_EQ(metric.count(), stats.distance_computations);
}

}  // namespace
}  // namespace mcm
