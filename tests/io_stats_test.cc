#include "mcm/storage/io_stats.h"

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(IoStatsSnapshot, DiffIsolatesMeasuredSection) {
  InMemoryPageFile file(32);
  BufferPool pool(&file, 4);
  const PageId a = file.Allocate();
  const PageId b = file.Allocate();

  // Warm-up activity that a reset-based approach would have to clobber.
  { PageGuard g = pool.Fetch(a); }
  { PageGuard g = pool.Fetch(a); }
  ASSERT_EQ(pool.stats().fetches, 2u);

  const IoStatsSnapshot before = CaptureIoStats(pool);

  // Measured section: one hit on the cached page, one miss on a fresh one.
  { PageGuard g = pool.Fetch(a); }
  { PageGuard g = pool.Fetch(b); }

  const IoStatsSnapshot delta = CaptureIoStats(pool) - before;
  EXPECT_EQ(delta.pool.fetches, 2u);
  EXPECT_EQ(delta.pool.hits, 1u);
  EXPECT_EQ(delta.pool.misses, 1u);
  EXPECT_EQ(delta.pool.evictions, 0u);
  EXPECT_EQ(delta.pool.flushes, 0u);
  EXPECT_EQ(delta.file.reads, 1u);  // Only the miss touched the file.
  EXPECT_EQ(delta.file.writes, 0u);
  EXPECT_EQ(delta.file.allocations, 0u);

  // Cumulative counters are untouched by snapshotting.
  EXPECT_EQ(pool.stats().fetches, 4u);
  EXPECT_EQ(file.stats().reads, 2u);
}

TEST(IoStatsSnapshot, DiffCapturesEvictionsFlushesAndAllocations) {
  InMemoryPageFile file(32);
  BufferPool pool(&file, 1);
  const PageId a = file.Allocate();
  { PageGuard g = pool.Fetch(a); }

  const IoStatsSnapshot before = CaptureIoStats(pool);

  const PageId b = file.Allocate();
  {
    PageGuard g = pool.Fetch(a);  // Hit (still resident).
    g.data()[0] = 7;
    g.MarkDirty();
  }
  { PageGuard g = pool.Fetch(b); }  // Evicts dirty a -> flush + write.

  const IoStatsSnapshot delta = CaptureIoStats(pool) - before;
  EXPECT_EQ(delta.pool.fetches, 2u);
  EXPECT_EQ(delta.pool.hits, 1u);
  EXPECT_EQ(delta.pool.misses, 1u);
  EXPECT_EQ(delta.pool.evictions, 1u);
  EXPECT_EQ(delta.pool.flushes, 1u);
  EXPECT_EQ(delta.file.reads, 1u);
  EXPECT_EQ(delta.file.writes, 1u);
  EXPECT_EQ(delta.file.allocations, 1u);
}

TEST(IoStatsSnapshot, TwoDisjointSectionsComposeAdditively) {
  InMemoryPageFile file(32);
  BufferPool pool(&file, 4);
  const PageId a = file.Allocate();

  const IoStatsSnapshot s0 = CaptureIoStats(pool);
  { PageGuard g = pool.Fetch(a); }  // Miss.
  const IoStatsSnapshot s1 = CaptureIoStats(pool);
  { PageGuard g = pool.Fetch(a); }  // Hit.
  const IoStatsSnapshot s2 = CaptureIoStats(pool);

  const IoStatsSnapshot first = s1 - s0;
  const IoStatsSnapshot second = s2 - s1;
  const IoStatsSnapshot whole = s2 - s0;
  EXPECT_EQ(first.pool.misses + second.pool.misses, whole.pool.misses);
  EXPECT_EQ(first.pool.hits + second.pool.hits, whole.pool.hits);
  EXPECT_EQ(first.pool.fetches + second.pool.fetches, whole.pool.fetches);
  EXPECT_EQ(first.file.reads + second.file.reads, whole.file.reads);
}

}  // namespace
}  // namespace mcm
