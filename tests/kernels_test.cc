#include "mcm/metric/kernels.h"

#include <cmath>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mcm/common/random.h"

namespace mcm {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

std::vector<float> RandomVector(size_t n, RandomEngine& rng) {
  std::vector<float> v(n);
  for (auto& x : v) {
    x = static_cast<float>(UniformUnit(rng) * 2.0 - 1.0);
  }
  return v;
}

// Naive sequential references (the pre-kernel metric code): used for
// tolerance checks only — the kernels use a different (fixed) summation
// order, so sums agree to rounding, not bitwise.
double NaiveL1(const std::vector<float>& a, const std::vector<float>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    s += std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
  }
  return s;
}

double NaiveL2Squared(const std::vector<float>& a,
                      const std::vector<float>& b) {
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = static_cast<double>(a[i]) - static_cast<double>(b[i]);
    s += d * d;
  }
  return s;
}

double NaiveLInf(const std::vector<float>& a, const std::vector<float>& b) {
  double best = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d =
        std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i]));
    if (d > best) best = d;
  }
  return best;
}

// Every dimension pattern that exercises the 8-wide main loop and the
// scalar tail: empty, pure tail, exactly one block, block+tail, many
// blocks.
const size_t kDims[] = {0, 1, 3, 7, 8, 9, 15, 16, 17, 31, 32, 64, 100, 257};

TEST(Kernels, DispatchedMatchesPortableBitwise) {
  // The load-bearing contract: whatever backend ActiveBackend() picked
  // (AVX2 on this machine's CI when available), results are bit-identical
  // to the portable reference, so runtime dispatch can never change a
  // query answer.
  auto rng = MakeEngine(7, 0);
  for (const size_t dim : kDims) {
    for (int rep = 0; rep < 20; ++rep) {
      const auto a = RandomVector(dim, rng);
      const auto b = RandomVector(dim, rng);
      EXPECT_EQ(kernels::L1(a.data(), b.data(), dim),
                kernels::portable::L1(a.data(), b.data(), dim));
      EXPECT_EQ(kernels::L2Squared(a.data(), b.data(), dim),
                kernels::portable::L2Squared(a.data(), b.data(), dim));
      EXPECT_EQ(kernels::LInf(a.data(), b.data(), dim),
                kernels::portable::LInf(a.data(), b.data(), dim));
    }
  }
}

TEST(Kernels, MatchesNaiveReferenceWithinTolerance) {
  auto rng = MakeEngine(11, 0);
  for (const size_t dim : kDims) {
    const auto a = RandomVector(dim, rng);
    const auto b = RandomVector(dim, rng);
    EXPECT_NEAR(kernels::L1(a.data(), b.data(), dim), NaiveL1(a, b), 1e-9);
    EXPECT_NEAR(kernels::L2Squared(a.data(), b.data(), dim),
                NaiveL2Squared(a, b), 1e-9);
    EXPECT_NEAR(kernels::L2(a.data(), b.data(), dim),
                std::sqrt(NaiveL2Squared(a, b)), 1e-9);
    // Max has no reassociation error: exact match.
    EXPECT_EQ(kernels::LInf(a.data(), b.data(), dim), NaiveLInf(a, b));
  }
}

TEST(Kernels, BoundedMatchesUnboundedWhenNotAborting) {
  auto rng = MakeEngine(13, 0);
  for (const size_t dim : kDims) {
    const auto a = RandomVector(dim, rng);
    const auto b = RandomVector(dim, rng);
    const double l1 = kernels::L1(a.data(), b.data(), dim);
    const double l2 = kernels::L2(a.data(), b.data(), dim);
    const double linf = kernels::LInf(a.data(), b.data(), dim);
    // Bound exactly at the distance: must not abort, and must return the
    // bit-identical value of the unbounded kernel.
    EXPECT_EQ(kernels::L1Within(a.data(), b.data(), dim, l1), l1);
    EXPECT_EQ(kernels::L2Within(a.data(), b.data(), dim, l2), l2);
    EXPECT_EQ(kernels::LInfWithin(a.data(), b.data(), dim, linf), linf);
    // +inf bound: never aborts.
    EXPECT_EQ(kernels::L1Within(a.data(), b.data(), dim, kInf), l1);
    EXPECT_EQ(kernels::L2Within(a.data(), b.data(), dim, kInf), l2);
    EXPECT_EQ(kernels::LInfWithin(a.data(), b.data(), dim, kInf), linf);
  }
}

TEST(Kernels, BoundedAbortsOnlyWhenDistanceExceedsBound) {
  auto rng = MakeEngine(17, 0);
  for (const size_t dim : kDims) {
    for (int rep = 0; rep < 20; ++rep) {
      const auto a = RandomVector(dim, rng);
      const auto b = RandomVector(dim, rng);
      const double bound = UniformUnit(rng) * static_cast<double>(dim) * 0.5;
      const double l1 = kernels::L1(a.data(), b.data(), dim);
      const double l2 = kernels::L2(a.data(), b.data(), dim);
      const double linf = kernels::LInf(a.data(), b.data(), dim);
      const double b1 = kernels::L1Within(a.data(), b.data(), dim, bound);
      const double b2 = kernels::L2Within(a.data(), b.data(), dim, bound);
      const double bi = kernels::LInfWithin(a.data(), b.data(), dim, bound);
      // Exact value when within the bound; +inf (or, for short vectors
      // where no abort checkpoint was reached, still the exact value) when
      // beyond it. Either way the verdict "d <= bound" is preserved.
      if (l1 <= bound) {
        EXPECT_EQ(b1, l1);
      } else {
        EXPECT_TRUE(b1 == l1 || b1 == kInf) << b1;
        EXPECT_GT(b1, bound);
      }
      if (l2 <= bound) {
        EXPECT_EQ(b2, l2);
      } else {
        EXPECT_TRUE(b2 == l2 || b2 == kInf) << b2;
        EXPECT_GT(b2, bound);
      }
      if (linf <= bound) {
        EXPECT_EQ(bi, linf);
      } else {
        EXPECT_TRUE(bi == linf || bi == kInf) << bi;
        EXPECT_GT(bi, bound);
      }
    }
  }
}

TEST(Kernels, NegativeBoundRejectsEverything) {
  auto rng = MakeEngine(19, 0);
  const auto a = RandomVector(32, rng);
  const auto b = RandomVector(32, rng);
  const double neg = -1.0;
  EXPECT_GT(kernels::L1Within(a.data(), b.data(), 32, neg), neg);
  EXPECT_GT(kernels::L2Within(a.data(), b.data(), 32, neg), neg);
  EXPECT_GT(kernels::LInfWithin(a.data(), b.data(), 32, neg), neg);
}

TEST(Kernels, LpPowSumMatchesPow) {
  auto rng = MakeEngine(23, 0);
  const auto a = RandomVector(33, rng);
  const auto b = RandomVector(33, rng);
  for (const int p : {1, 2, 3, 4, 7}) {
    double expected = 0.0;
    for (size_t i = 0; i < a.size(); ++i) {
      expected += std::pow(
          std::fabs(static_cast<double>(a[i]) - static_cast<double>(b[i])),
          p);
    }
    EXPECT_NEAR(kernels::LpPowSum(a.data(), b.data(), a.size(), p), expected,
                1e-9 * (expected + 1.0));
    EXPECT_NEAR(kernels::LpPowSumGeneral(a.data(), b.data(), a.size(),
                                         static_cast<double>(p)),
                expected, 1e-9 * (expected + 1.0));
  }
}

TEST(Kernels, LpPowSumWithinContract) {
  auto rng = MakeEngine(29, 0);
  for (int rep = 0; rep < 50; ++rep) {
    const auto a = RandomVector(40, rng);
    const auto b = RandomVector(40, rng);
    const int p = 3;
    const double sum = kernels::LpPowSum(a.data(), b.data(), 40, p);
    const double dist = std::pow(sum, 1.0 / p);
    const double bound = UniformUnit(rng) * 2.0;
    const double got = kernels::LpPowSumWithin(a.data(), b.data(), 40, p,
                                               bound);
    if (dist <= bound) {
      EXPECT_EQ(got, sum);
    } else {
      EXPECT_TRUE(got == sum || got == kInf) << got;
    }
  }
}

TEST(Kernels, BackendNameIsMeaningful) {
  const kernels::Backend backend = kernels::ActiveBackend();
  const char* name = kernels::BackendName(backend);
  EXPECT_TRUE(std::string(name) == "portable" ||
              std::string(name) == "avx2");
}

}  // namespace
}  // namespace mcm
