// L-MCM tests: consistency with N-MCM (they coincide when all nodes of a
// level share radius and entry count), Eq. 15/16 identities, and measured
// accuracy (paper: ~10% for range queries; we assert 25%).

#include <gtest/gtest.h>

#include "mcm/bench_util/experiment.h"
#include "mcm/cost/lmcm.h"
#include "mcm/cost/nmcm.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;

DistanceHistogram SmoothHistogram() {
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) {
    samples.push_back(static_cast<double>(i) / 1000.0);
  }
  return DistanceHistogram(samples, 100, 1.0);
}

TEST(LevelBasedCostModel, MatchesNmcmOnDegenerateUniformTree) {
  // A synthetic stats view where every node of a level is identical: the
  // two models must agree exactly.
  MTreeStatsView stats;
  stats.num_objects = 1000;
  stats.height = 3;
  stats.nodes.push_back({1, 1.0, 5, false});
  for (int i = 0; i < 5; ++i) stats.nodes.push_back({2, 0.4, 10, false});
  for (int i = 0; i < 50; ++i) stats.nodes.push_back({3, 0.1, 20, true});
  stats.levels = AggregateLevels(stats.nodes);

  const auto h = SmoothHistogram();
  const NodeBasedCostModel nmcm(h, stats);
  const LevelBasedCostModel lmcm(h, stats);
  for (double r : {0.0, 0.1, 0.3, 0.7, 1.0}) {
    EXPECT_NEAR(nmcm.RangeNodes(r), lmcm.RangeNodes(r), 1e-9) << r;
    EXPECT_NEAR(nmcm.RangeObjects(r), lmcm.RangeObjects(r), 1e-9) << r;
  }
  // Eq. 16 counts M_{l+1} entries below level l; with exact per-node entry
  // counts this matches Eq. 7 here too.
  for (double r : {0.0, 0.2, 0.9}) {
    EXPECT_NEAR(nmcm.RangeDistances(r), lmcm.RangeDistances(r), 1e-9) << r;
  }
  EXPECT_NEAR(nmcm.NnNodes(1), lmcm.NnNodes(1), 1e-6);
  EXPECT_NEAR(nmcm.NnDistances(1), lmcm.NnDistances(1), 1e-3);
}

TEST(LevelBasedCostModel, FullRadiusCountsAllNodesAndEntries) {
  MTreeStatsView stats;
  stats.num_objects = 300;
  stats.height = 2;
  stats.nodes.push_back({1, 1.0, 10, false});
  for (int i = 0; i < 10; ++i) stats.nodes.push_back({2, 0.2, 30, true});
  stats.levels = AggregateLevels(stats.nodes);
  const auto h = SmoothHistogram();
  const LevelBasedCostModel model(h, stats);
  EXPECT_NEAR(model.RangeNodes(1.0), 11.0, 1e-9);
  // Eq. 16: M_2 * F(r̄_1 + r) + n * F(r̄_2 + r) = 10 + 300 at full radius.
  EXPECT_NEAR(model.RangeDistances(1.0), 310.0, 1e-9);
}

TEST(LevelBasedCostModel, AccuracyCloseToNmcmOnRealTree) {
  MTreeOptions options;
  const auto data = GenerateClustered(8000, 15, 127);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto h = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const auto stats = tree.CollectStats(1.0);
  const NodeBasedCostModel nmcm(h, stats);
  const LevelBasedCostModel lmcm(h, stats);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 150, 15, 127);
  const double rq = std::pow(0.01, 1.0 / 15.0) / 2.0;
  const auto measured = MeasureRange(tree, queries, rq);
  EXPECT_NEAR(lmcm.RangeNodes(rq), measured.avg_nodes,
              0.25 * measured.avg_nodes);
  EXPECT_NEAR(lmcm.RangeDistances(rq), measured.avg_dists,
              0.25 * measured.avg_dists);
  // L-MCM should be a coarsening of N-MCM, not wildly different.
  EXPECT_NEAR(lmcm.RangeNodes(rq), nmcm.RangeNodes(rq),
              0.25 * nmcm.RangeNodes(rq));
}

TEST(LevelBasedCostModel, NnAccuracyOnRealTree) {
  MTreeOptions options;
  const auto data = GenerateClustered(6000, 10, 131);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto h = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const LevelBasedCostModel lmcm(h, tree.CollectStats(1.0));
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 150, 10, 131);
  const auto measured = MeasureKnn(tree, queries, 1);
  EXPECT_NEAR(lmcm.NnNodes(1), measured.avg_nodes, 0.35 * measured.avg_nodes);
  EXPECT_NEAR(lmcm.NnDistances(1), measured.avg_dists,
              0.35 * measured.avg_dists);
}

TEST(LevelBasedCostModel, RejectsBadLevelNumbering) {
  const auto h = SmoothHistogram();
  std::vector<LevelStatRecord> levels = {{2, 5, 0.3, 10.0}};
  EXPECT_THROW(LevelBasedCostModel(h, levels, 100), std::invalid_argument);
  EXPECT_THROW(LevelBasedCostModel(h, std::vector<LevelStatRecord>{}, 100),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcm
