// Property-based checks of the metric axioms — non-negativity, identity,
// symmetry, triangle inequality — for every metric the library ships, over
// random samples of the object space.

#include <functional>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mcm/common/random.h"
#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/counted_metric.h"
#include "mcm/metric/string_metrics.h"
#include "mcm/metric/vector_metrics.h"

namespace mcm {
namespace {

struct VectorMetricCase {
  std::string name;
  std::function<double(const FloatVector&, const FloatVector&)> metric;
};

class VectorMetricProperties
    : public ::testing::TestWithParam<VectorMetricCase> {};

TEST_P(VectorMetricProperties, AxiomsHoldOnRandomTriples) {
  const auto& metric = GetParam().metric;
  const auto points = GenerateUniform(60, 8, /*seed=*/123);
  for (size_t i = 0; i < points.size(); ++i) {
    for (size_t j = 0; j < points.size(); j += 3) {
      const double dij = metric(points[i], points[j]);
      EXPECT_GE(dij, 0.0);
      EXPECT_NEAR(dij, metric(points[j], points[i]), 1e-9);
      if (i == j) {
        EXPECT_NEAR(dij, 0.0, 1e-9);
      }
      const size_t k = (i * 7 + j * 3 + 1) % points.size();
      const double dik = metric(points[i], points[k]);
      const double dkj = metric(points[k], points[j]);
      EXPECT_LE(dij, dik + dkj + 1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVectorMetrics, VectorMetricProperties,
    ::testing::Values(
        VectorMetricCase{"L1", L1Distance{}},
        VectorMetricCase{"L2", L2Distance{}},
        VectorMetricCase{"LInf", LInfDistance{}},
        VectorMetricCase{"L3", LpDistance{3.0}},
        VectorMetricCase{"L1_5", LpDistance{1.5}}),
    [](const ::testing::TestParamInfo<VectorMetricCase>& info) {
      return info.param.name;
    });

struct StringMetricCase {
  std::string name;
  std::function<double(const std::string&, const std::string&)> metric;
};

class StringMetricProperties
    : public ::testing::TestWithParam<StringMetricCase> {};

TEST_P(StringMetricProperties, AxiomsHoldOnRandomKeywords) {
  const auto& metric = GetParam().metric;
  const auto words = GenerateKeywords(40, /*seed=*/321);
  for (size_t i = 0; i < words.size(); ++i) {
    for (size_t j = 0; j < words.size(); j += 4) {
      const double dij = metric(words[i], words[j]);
      EXPECT_GE(dij, 0.0);
      EXPECT_NEAR(dij, metric(words[j], words[i]), 1e-9);
      if (words[i] == words[j]) {
        EXPECT_NEAR(dij, 0.0, 1e-9);
      } else {
        EXPECT_GT(dij, 0.0);
      }
      const size_t k = (i * 5 + j + 2) % words.size();
      EXPECT_LE(dij,
                metric(words[i], words[k]) + metric(words[k], words[j]) +
                    1e-9);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllStringMetrics, StringMetricProperties,
    ::testing::Values(
        StringMetricCase{"Edit", EditDistanceMetric{}},
        StringMetricCase{"WeightedUnit", WeightedEditDistance{1.0, 1.0, 1.0}},
        StringMetricCase{"WeightedSub",
                         WeightedEditDistance{1.0, 1.0, 1.5}}),
    [](const ::testing::TestParamInfo<StringMetricCase>& info) {
      return info.param.name;
    });

TEST(CountedMetric, CountsSharedAcrossCopies) {
  CountedMetric<LInfDistance> metric;
  const FloatVector a = {0, 0}, b = {1, 1};
  EXPECT_EQ(metric.count(), 0u);
  metric(a, b);
  const CountedMetric<LInfDistance> copy = metric;
  copy(a, b);
  EXPECT_EQ(metric.count(), 2u);
  EXPECT_EQ(copy.count(), 2u);
  metric.Reset();
  EXPECT_EQ(copy.count(), 0u);
}

TEST(CountedMetric, ReturnsInnerMetricValue) {
  CountedMetric<L2Distance> metric;
  EXPECT_DOUBLE_EQ(metric(FloatVector{0, 0}, FloatVector{3, 4}), 5.0);
}

}  // namespace
}  // namespace mcm
