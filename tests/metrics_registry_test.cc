#include "mcm/obs/metrics.h"

#include <gtest/gtest.h>

#include <sstream>
#include <thread>
#include <vector>

namespace mcm {
namespace {

TEST(CounterTest, IncrementsAndReads) {
  Counter c;
  EXPECT_EQ(c.Value(), 0u);
  c.Increment();
  c.Increment(41);
  EXPECT_EQ(c.Value(), 42u);
}

TEST(CounterTest, ConcurrentIncrementsAreLossless) {
  Counter c;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (int i = 0; i < kPerThread; ++i) c.Increment();
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(c.Value(), static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(GaugeTest, SetAndAdd) {
  Gauge g;
  g.Set(1.5);
  EXPECT_DOUBLE_EQ(g.Value(), 1.5);
  g.Add(2.5);
  EXPECT_DOUBLE_EQ(g.Value(), 4.0);
}

TEST(GaugeTest, ConcurrentAddsAreLossless) {
  Gauge g;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 5000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&g] {
      for (int i = 0; i < kPerThread; ++i) g.Add(1.0);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_DOUBLE_EQ(g.Value(), static_cast<double>(kThreads) * kPerThread);
}

TEST(HistogramTest, BucketBoundaries) {
  // Bucket semantics: bucket i counts v <= bounds[i]; last is overflow.
  Histogram h({1.0, 10.0, 100.0});
  h.Observe(0.5);    // bucket 0
  h.Observe(1.0);    // bucket 0 (inclusive upper bound)
  h.Observe(1.0001); // bucket 1
  h.Observe(10.0);   // bucket 1
  h.Observe(99.0);   // bucket 2
  h.Observe(100.0);  // bucket 2
  h.Observe(101.0);  // overflow
  const auto counts = h.BucketCounts();
  ASSERT_EQ(counts.size(), 4u);
  EXPECT_EQ(counts[0], 2u);
  EXPECT_EQ(counts[1], 2u);
  EXPECT_EQ(counts[2], 2u);
  EXPECT_EQ(counts[3], 1u);
  EXPECT_EQ(h.Count(), 7u);
  EXPECT_NEAR(h.Sum(), 0.5 + 1.0 + 1.0001 + 10.0 + 99.0 + 100.0 + 101.0,
              1e-9);
  EXPECT_NEAR(h.Mean(), h.Sum() / 7.0, 1e-9);
}

TEST(HistogramTest, QuantileInterpolatesWithinBucket) {
  Histogram h({10.0, 20.0});
  for (int i = 0; i < 100; ++i) h.Observe(5.0);  // All in bucket 0.
  // Every observation falls in (0, 10]; the median interpolates inside it.
  const double q50 = h.Quantile(0.5);
  EXPECT_GT(q50, 0.0);
  EXPECT_LE(q50, 10.0);
  // Quantiles are monotone in p.
  EXPECT_LE(h.Quantile(0.1), h.Quantile(0.9));
}

TEST(HistogramTest, ConcurrentObserve) {
  Histogram h(DefaultLatencyBoundsUs());
  constexpr int kThreads = 4;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&h, t] {
      for (int i = 0; i < kPerThread; ++i) {
        h.Observe(static_cast<double>(t * 100 + i % 100));
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(h.Count(), static_cast<uint64_t>(kThreads) * kPerThread);
  uint64_t total = 0;
  for (uint64_t c : h.BucketCounts()) total += c;
  EXPECT_EQ(total, h.Count());
}

TEST(MetricsRegistryTest, InstrumentIdentityIsStable) {
  MetricsRegistry registry;
  Counter& a = registry.GetCounter("requests");
  Counter& b = registry.GetCounter("requests");
  EXPECT_EQ(&a, &b);
  a.Increment(3);
  EXPECT_EQ(b.Value(), 3u);
  Gauge& g1 = registry.GetGauge("height");
  Gauge& g2 = registry.GetGauge("height");
  EXPECT_EQ(&g1, &g2);
  Histogram& h1 = registry.GetHistogram("lat", {1.0, 2.0});
  Histogram& h2 = registry.GetHistogram("lat", {999.0});  // Bounds ignored.
  EXPECT_EQ(&h1, &h2);
  EXPECT_EQ(h2.bounds().size(), 2u);
}

TEST(MetricsRegistryTest, ConcurrentRegistrationAndUpdates) {
  MetricsRegistry registry;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 2000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&registry] {
      for (int i = 0; i < kPerThread; ++i) {
        // All threads race to register and bump the same counter.
        registry.GetCounter("shared").Increment();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(registry.GetCounter("shared").Value(),
            static_cast<uint64_t>(kThreads) * kPerThread);
}

TEST(MetricsRegistryTest, WriteJsonlAndTextMentionInstruments) {
  MetricsRegistry registry;
  registry.GetCounter("mcm.test.counter").Increment(7);
  registry.GetGauge("mcm.test.gauge").Set(2.5);
  registry.GetHistogram("mcm.test.hist", {1.0}).Observe(0.5);
  std::ostringstream jsonl;
  registry.WriteJsonl(jsonl);
  EXPECT_NE(jsonl.str().find("mcm.test.counter"), std::string::npos);
  EXPECT_NE(jsonl.str().find("mcm.test.gauge"), std::string::npos);
  EXPECT_NE(jsonl.str().find("mcm.test.hist"), std::string::npos);
  std::ostringstream text;
  registry.WriteText(text);
  EXPECT_NE(text.str().find("mcm.test.counter"), std::string::npos);
  registry.Clear();
  std::ostringstream empty;
  registry.WriteJsonl(empty);
  EXPECT_EQ(empty.str().find("mcm.test.counter"), std::string::npos);
}

TEST(ObsEnabledTest, TestingOverrideWins) {
  SetObsEnabledForTesting(true);
  EXPECT_TRUE(ObsEnabled());
  SetObsEnabledForTesting(false);
  EXPECT_FALSE(ObsEnabled());
}

}  // namespace
}  // namespace mcm
