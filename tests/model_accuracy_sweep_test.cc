// Parameterized end-to-end accuracy sweep: the paper's headline claim —
// N-MCM predicts range-query costs within a few percent, L-MCM within
// ~10-15% — asserted across a grid of dataset kinds, dimensionalities and
// selectivities. Each case runs the full pipeline (generate → bulk load →
// histogram → predict → measure) with its own seed.

#include <cmath>
#include <string>

#include <gtest/gtest.h>

#include "mcm/bench_util/experiment.h"
#include "mcm/cost/lmcm.h"
#include "mcm/cost/nmcm.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;

struct SweepCase {
  VectorDatasetKind kind;
  size_t dim;
  double selectivity;  // Target fraction of the dataset a query returns.
  uint64_t seed;
};

std::string CaseName(const ::testing::TestParamInfo<SweepCase>& info) {
  const auto& c = info.param;
  return std::string(c.kind == VectorDatasetKind::kUniform ? "uniform"
                                                           : "clustered") +
         "D" + std::to_string(c.dim) + "sel" +
         std::to_string(static_cast<int>(c.selectivity * 1000));
}

class ModelAccuracySweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(ModelAccuracySweep, RangeCostsWithinBand) {
  const SweepCase& c = GetParam();
  const size_t n = 4000;
  const auto data = GenerateVectorDataset(c.kind, n, c.dim, c.seed);
  const auto queries = GenerateVectorQueries(c.kind, 150, c.dim, c.seed);
  MTreeOptions options;
  options.seed = c.seed;
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  EstimatorOptions eo;
  eo.num_bins = 100;
  eo.seed = c.seed;
  const auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const auto stats = tree.CollectStats(1.0);
  const NodeBasedCostModel nmcm(hist, stats);
  const LevelBasedCostModel lmcm(hist, stats);

  // Radius achieving the requested selectivity, from the histogram.
  const double rq = hist.Quantile(c.selectivity);
  const auto measured = MeasureRange(tree, queries, rq);
  ASSERT_GT(measured.avg_nodes, 0.0);

  // Paper bands (4% / 10%) with safety margin: this sweep runs at n = 4000
  // (2.5x smaller than the paper's experiments) and includes selectivities
  // of 0.1%, where histogram quantization contributes most of the error —
  // the n = 10^4 benches reproduce the tight paper bands.
  EXPECT_NEAR(nmcm.RangeNodes(rq), measured.avg_nodes,
              0.30 * measured.avg_nodes + 1.0)
      << "rq=" << rq;
  EXPECT_NEAR(nmcm.RangeDistances(rq), measured.avg_dists,
              0.30 * measured.avg_dists + 10.0);
  EXPECT_NEAR(lmcm.RangeNodes(rq), measured.avg_nodes,
              0.35 * measured.avg_nodes + 1.0);
  EXPECT_NEAR(lmcm.RangeDistances(rq), measured.avg_dists,
              0.35 * measured.avg_dists + 10.0);
  // Selectivity (Eq. 8) is the tightest of the paper's claims.
  EXPECT_NEAR(nmcm.RangeObjects(rq), measured.avg_results,
              0.25 * measured.avg_results + 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, ModelAccuracySweep,
    ::testing::Values(
        SweepCase{VectorDatasetKind::kUniform, 5, 0.001, 601},
        SweepCase{VectorDatasetKind::kUniform, 5, 0.02, 602},
        SweepCase{VectorDatasetKind::kUniform, 15, 0.001, 603},
        SweepCase{VectorDatasetKind::kUniform, 15, 0.02, 604},
        SweepCase{VectorDatasetKind::kUniform, 40, 0.005, 605},
        SweepCase{VectorDatasetKind::kClustered, 5, 0.001, 606},
        SweepCase{VectorDatasetKind::kClustered, 5, 0.02, 607},
        SweepCase{VectorDatasetKind::kClustered, 15, 0.001, 608},
        SweepCase{VectorDatasetKind::kClustered, 15, 0.02, 609},
        SweepCase{VectorDatasetKind::kClustered, 40, 0.005, 610},
        SweepCase{VectorDatasetKind::kClustered, 25, 0.05, 611}),
    CaseName);

}  // namespace
}  // namespace mcm
