// BulkLoading tests: structural invariants, balance, utilization, and the
// equivalence of the memory-resident and page-resident node stores.

#include <memory>

#include <gtest/gtest.h>

#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/check/check_mtree.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;
using StrTraits = StringTraits<>;

TEST(BulkLoad, InvariantsOnClusteredVectors) {
  MTreeOptions options;  // Paper defaults: 4 KB nodes, 30% utilization.
  const auto data = GenerateClustered(5000, 10, 61);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  EXPECT_EQ(tree.size(), 5000u);
  const auto result = check::CheckMTree(tree);
  EXPECT_TRUE(result.ok()) << result.Summary();
}

TEST(BulkLoad, InvariantsOnKeywords) {
  MTreeOptions options;
  const auto words = GenerateKeywords(4000, 67);
  auto tree = MTree<StrTraits>::BulkLoad(words, EditDistanceMetric{}, options);
  EXPECT_EQ(tree.size(), 4000u);
  const auto result = check::CheckMTree(tree);
  EXPECT_TRUE(result.ok()) << result.Summary();
}

TEST(BulkLoad, EmptyAndTinyInputs) {
  MTreeOptions options;
  auto empty = MTree<VecTraits>::BulkLoad({}, LInfDistance{}, options);
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_EQ(empty.height(), 0u);

  auto tiny =
      MTree<VecTraits>::BulkLoad({{0.1f, 0.1f}, {0.9f, 0.9f}}, LInfDistance{},
                                 options);
  EXPECT_EQ(tiny.size(), 2u);
  EXPECT_EQ(tiny.height(), 1u);  // Both fit in the root leaf.
  EXPECT_EQ(tiny.RangeSearch({0.0f, 0.0f}, 1.0).size(), 2u);
}

TEST(BulkLoad, MinimumUtilizationMostlyRespected) {
  MTreeOptions options;
  options.node_size_bytes = 1024;
  options.min_utilization = 0.3;
  const auto data = GenerateUniform(4000, 6, 71);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  const auto stats = tree.CollectStats(1.0);
  const size_t entry = MTreeNode<VecTraits>::LeafEntrySize(data[0]);
  const size_t capacity =
      options.node_size_bytes - MTreeNode<VecTraits>::HeaderSize();
  size_t under = 0, leaves = 0;
  for (const auto& node : stats.nodes) {
    if (!node.is_leaf) continue;
    ++leaves;
    const size_t bytes = node.num_entries * entry;
    if (static_cast<double>(bytes) <
        options.min_utilization * static_cast<double>(capacity)) {
      ++under;
    }
  }
  // The repair pass should leave (almost) no under-filled leaves.
  EXPECT_LE(under, leaves / 20);
}

TEST(BulkLoad, BalancedHeightMatchesCollectStats) {
  MTreeOptions options;
  options.node_size_bytes = 512;
  const auto data = GenerateUniform(3000, 4, 73);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  const auto stats = tree.CollectStats(1.0);
  EXPECT_EQ(stats.height, tree.height());
  EXPECT_EQ(stats.levels.size(), tree.height());
  EXPECT_EQ(stats.levels.front().num_nodes, 1u);  // Root level.
}

TEST(BulkLoad, PagedStoreProducesIdenticalAnswers) {
  MTreeOptions options;
  options.node_size_bytes = 1024;
  const auto data = GenerateClustered(1500, 8, 79);

  auto memory_tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  auto paged_store = std::make_unique<PagedNodeStore<VecTraits>>(
      std::make_unique<InMemoryPageFile>(options.node_size_bytes),
      options.buffer_pool_frames);
  auto paged_tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options,
                                               std::move(paged_store));

  EXPECT_TRUE(check::CheckMTree(paged_tree).ok());
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 20, 8, 79);
  for (const auto& q : queries) {
    QueryStats sm, sp;
    const auto rm = memory_tree.RangeSearch(q, 0.2, &sm);
    const auto rp = paged_tree.RangeSearch(q, 0.2, &sp);
    ASSERT_EQ(rm.size(), rp.size());
    for (size_t i = 0; i < rm.size(); ++i) {
      EXPECT_EQ(rm[i].oid, rp[i].oid);
    }
    // Same construction seed => identical tree => identical cost counters.
    EXPECT_EQ(sm.nodes_accessed, sp.nodes_accessed);
    EXPECT_EQ(sm.distance_computations, sp.distance_computations);
  }
}

TEST(BulkLoad, WorksOnRealDiskFile) {
  MTreeOptions options;
  options.node_size_bytes = 1024;
  options.buffer_pool_frames = 8;  // Tiny pool forces real page traffic.
  const std::string path = ::testing::TempDir() + "/mcm_bulk_disk.bin";
  auto store = std::make_unique<PagedNodeStore<VecTraits>>(
      std::make_unique<StdioPageFile>(path, options.node_size_bytes),
      options.buffer_pool_frames);
  const auto data = GenerateClustered(800, 5, 83);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options,
                                         std::move(store));
  EXPECT_EQ(tree.size(), 800u);
  EXPECT_EQ(tree.RangeSearch(data[0], 0.0).size(),
            static_cast<size_t>(std::count(data.begin(), data.end(),
                                           data[0])));
  std::remove(path.c_str());
}

TEST(BulkLoad, AllDuplicateObjectsHandled) {
  MTreeOptions options;
  options.node_size_bytes = 256;
  const std::vector<FloatVector> data(500, FloatVector{0.5f, 0.5f});
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  EXPECT_EQ(tree.size(), 500u);
  EXPECT_EQ(tree.RangeSearch({0.5f, 0.5f}, 0.0).size(), 500u);
  EXPECT_TRUE(check::CheckMTree(tree).ok());
}

TEST(BulkLoad, ExplicitOidsPreserved) {
  MTreeOptions options;
  const std::vector<FloatVector> data = {{0.1f}, {0.2f}, {0.3f}};
  const std::vector<uint64_t> oids = {100, 200, 300};
  auto tree = BulkLoader<VecTraits>::Load(data, oids, LInfDistance{}, options,
                                          nullptr);
  const auto r = tree.RangeSearch({0.2f}, 0.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].oid, 200u);
}

TEST(BulkLoad, OidSizeMismatchRejected) {
  const std::vector<FloatVector> data = {{0.1f}, {0.2f}};
  EXPECT_THROW(BulkLoader<VecTraits>::Load(data, {1}, LInfDistance{},
                                           MTreeOptions{}, nullptr),
               std::invalid_argument);
}

TEST(BulkLoad, NodeSizeControlsTreeHeight) {
  const auto data = GenerateUniform(2000, 6, 89);
  MTreeOptions small_nodes;
  small_nodes.node_size_bytes = 256;
  MTreeOptions big_nodes;
  big_nodes.node_size_bytes = 8192;
  auto small_tree =
      MTree<VecTraits>::BulkLoad(data, LInfDistance{}, small_nodes);
  auto big_tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, big_nodes);
  EXPECT_GT(small_tree.height(), big_tree.height());
  EXPECT_GT(small_tree.store().NumNodes(), big_tree.store().NumNodes());
}

}  // namespace
}  // namespace mcm
