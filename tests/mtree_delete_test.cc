// Deletion tests: exact query answers against a linear scan of the
// remaining objects, structural invariants after heavy deletion, root
// collapse, and interleaved insert/delete workloads.

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/check/check_mtree.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;
using StrTraits = StringTraits<>;

TEST(MTreeDelete, RemovesOnlyTheRequestedEntry) {
  MTreeOptions options;
  options.node_size_bytes = 512;
  const auto data = GenerateClustered(300, 5, 191);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  EXPECT_TRUE(tree.Delete(data[42], 42));
  EXPECT_EQ(tree.size(), 299u);
  // oid 42 gone, everything else findable.
  for (size_t i = 0; i < data.size(); ++i) {
    const auto r = tree.RangeSearch(data[i], 0.0);
    const bool found =
        std::any_of(r.begin(), r.end(),
                    [&](const auto& res) { return res.oid == i; });
    EXPECT_EQ(found, i != 42) << i;
  }
}

TEST(MTreeDelete, MissingEntryReturnsFalse) {
  MTreeOptions options;
  const auto data = GenerateUniform(100, 3, 193);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  EXPECT_FALSE(tree.Delete({2.0f, 2.0f, 2.0f}, 0));     // No such object.
  EXPECT_FALSE(tree.Delete(data[5], 9999));             // Wrong oid.
  EXPECT_TRUE(tree.Delete(data[5], 5));
  EXPECT_FALSE(tree.Delete(data[5], 5));                // Already gone.
  EXPECT_EQ(tree.size(), 99u);
}

TEST(MTreeDelete, InvariantsHoldAfterHeavyDeletion) {
  MTreeOptions options;
  options.node_size_bytes = 512;
  const auto data = GenerateClustered(800, 6, 197);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  for (size_t i = 0; i < data.size(); i += 2) {
    ASSERT_TRUE(tree.Delete(data[i], i)) << i;
  }
  EXPECT_EQ(tree.size(), 400u);
  const auto result = check::CheckMTree(tree);
  EXPECT_TRUE(result.ok()) << result.Summary();

  // Queries over the survivors stay exact.
  const LInfDistance metric;
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 10, 6, 197);
  for (const auto& q : queries) {
    size_t expected = 0;
    for (size_t i = 1; i < data.size(); i += 2) {
      expected += metric(q, data[i]) <= 0.2 ? 1 : 0;
    }
    EXPECT_EQ(tree.RangeSearch(q, 0.2).size(), expected);
  }
}

TEST(MTreeDelete, DeletingEverythingEmptiesTheTree) {
  MTreeOptions options;
  options.node_size_bytes = 256;
  const auto data = GenerateUniform(150, 4, 199);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  for (size_t i = 0; i < data.size(); ++i) {
    ASSERT_TRUE(tree.Delete(data[i], i));
  }
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 0u);
  EXPECT_EQ(tree.root(), kInvalidNodeId);
  EXPECT_TRUE(tree.RangeSearch({0.5f, 0.5f, 0.5f, 0.5f}, 1.0).empty());
  // The tree is reusable after total deletion.
  tree.Insert(data[0], 1000);
  EXPECT_EQ(tree.KnnSearch(data[0], 1).front().oid, 1000u);
}

TEST(MTreeDelete, RootCollapsesWhenSingleChildRemains) {
  MTreeOptions options;
  options.node_size_bytes = 256;
  const auto data = GenerateClustered(400, 4, 211);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  const uint32_t initial_height = tree.height();
  ASSERT_GE(initial_height, 2u);
  // Delete down to a single object: every internal level collapses away.
  for (size_t i = 0; i + 1 < data.size(); ++i) {
    ASSERT_TRUE(tree.Delete(data[i], i));
  }
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  EXPECT_LT(tree.height(), initial_height);
  EXPECT_TRUE(check::CheckMTree(tree).ok());
  const auto r = tree.KnnSearch(data.back(), 1);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].oid, data.size() - 1);
}

TEST(MTreeDelete, DuplicateObjectsDeleteByOid) {
  MTreeOptions options;
  options.node_size_bytes = 256;
  MTree<VecTraits> tree(LInfDistance{}, options);
  const FloatVector p = {0.5f, 0.5f};
  for (size_t i = 0; i < 60; ++i) tree.Insert(p, i);
  EXPECT_TRUE(tree.Delete(p, 30));
  const auto r = tree.RangeSearch(p, 0.0);
  EXPECT_EQ(r.size(), 59u);
  EXPECT_FALSE(std::any_of(r.begin(), r.end(),
                           [](const auto& res) { return res.oid == 30; }));
}

TEST(MTreeDelete, InterleavedInsertAndDelete) {
  MTreeOptions options;
  options.node_size_bytes = 512;
  const auto data = GenerateClustered(600, 5, 223);
  MTree<StrTraits>* unused = nullptr;
  (void)unused;
  MTree<VecTraits> tree(LInfDistance{}, options);
  std::set<size_t> live;
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(data[i], i);
    live.insert(i);
    if (i % 3 == 2) {
      const size_t victim = *live.begin();
      ASSERT_TRUE(tree.Delete(data[victim], victim));
      live.erase(live.begin());
    }
  }
  EXPECT_EQ(tree.size(), live.size());
  const auto result = check::CheckMTree(tree);
  EXPECT_TRUE(result.ok()) << result.Summary();
  // Spot-check membership.
  for (size_t i : {*live.begin(), *live.rbegin()}) {
    const auto r = tree.RangeSearch(data[i], 0.0);
    EXPECT_TRUE(std::any_of(r.begin(), r.end(),
                            [&](const auto& res) { return res.oid == i; }));
  }
}

TEST(MTreeDelete, StringsUnderEditDistance) {
  MTreeOptions options;
  options.node_size_bytes = 512;
  const auto words = GenerateKeywords(400, 227);
  auto tree = MTree<StrTraits>::BulkLoad(words, EditDistanceMetric{}, options);
  for (size_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(tree.Delete(words[i], i));
  }
  EXPECT_EQ(tree.size(), 200u);
  EXPECT_TRUE(check::CheckMTree(tree).ok());
  EXPECT_TRUE(tree.RangeSearch(words[0], 0.0).empty());
  EXPECT_FALSE(tree.RangeSearch(words[300], 0.0).empty());
}

TEST(MTreeDelete, EmptyTreeReturnsFalse) {
  MTree<VecTraits> tree(LInfDistance{}, MTreeOptions{});
  EXPECT_FALSE(tree.Delete({0.5f}, 0));
}

}  // namespace
}  // namespace mcm
