// Dynamic-insertion tests: structural invariants must hold after every
// mixture of split policies, node sizes, and object types.

#include <string>
#include <tuple>

#include <gtest/gtest.h>

#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/mtree.h"
#include "mcm/check/check_mtree.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;
using StrTraits = StringTraits<>;

class InsertPolicyTest
    : public ::testing::TestWithParam<
          std::tuple<PromotePolicy, PartitionPolicy>> {};

TEST_P(InsertPolicyTest, InvariantsHoldAfterManyInserts) {
  MTreeOptions options;
  options.node_size_bytes = 512;
  options.promote_policy = std::get<0>(GetParam());
  options.partition_policy = std::get<1>(GetParam());
  MTree<VecTraits> tree(LInfDistance{}, options);

  const auto points = GenerateClustered(400, 5, 11);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(points[i], i);
  }
  EXPECT_EQ(tree.size(), 400u);
  EXPECT_GE(tree.height(), 2u);
  const auto result = check::CheckMTree(tree);
  EXPECT_TRUE(result.ok()) << result.Summary();
}

std::string PolicyCaseName(
    const ::testing::TestParamInfo<std::tuple<PromotePolicy, PartitionPolicy>>&
        info) {
  static const char* promote[] = {"Random", "Sampling", "MMRad", "MaxLbDist"};
  static const char* partition[] = {"Balanced", "Hyperplane"};
  return std::string(promote[static_cast<int>(std::get<0>(info.param))]) +
         partition[static_cast<int>(std::get<1>(info.param))];
}

INSTANTIATE_TEST_SUITE_P(
    AllPolicies, InsertPolicyTest,
    ::testing::Combine(::testing::Values(PromotePolicy::kRandom,
                                         PromotePolicy::kSampling,
                                         PromotePolicy::kMMRad,
                                         PromotePolicy::kMaxLbDist),
                       ::testing::Values(PartitionPolicy::kBalanced,
                                         PartitionPolicy::kHyperplane)),
    PolicyCaseName);

TEST(MTreeInsert, SingleObjectTree) {
  MTree<VecTraits> tree(LInfDistance{}, MTreeOptions{});
  tree.Insert({0.5f, 0.5f}, 99);
  EXPECT_EQ(tree.size(), 1u);
  EXPECT_EQ(tree.height(), 1u);
  const auto r = tree.RangeSearch({0.5f, 0.5f}, 0.0);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].oid, 99u);
  EXPECT_TRUE(check::CheckMTree(tree).ok());
}

TEST(MTreeInsert, DuplicateObjectsAreAllKept) {
  MTreeOptions options;
  options.node_size_bytes = 256;
  MTree<VecTraits> tree(LInfDistance{}, options);
  for (size_t i = 0; i < 100; ++i) {
    tree.Insert({0.25f, 0.75f}, i);
  }
  EXPECT_EQ(tree.size(), 100u);
  EXPECT_EQ(tree.RangeSearch({0.25f, 0.75f}, 0.0).size(), 100u);
  EXPECT_TRUE(check::CheckMTree(tree).ok());
}

TEST(MTreeInsert, StringsUnderEditDistance) {
  MTreeOptions options;
  options.node_size_bytes = 512;
  MTree<StrTraits> tree(EditDistanceMetric{}, options);
  const auto words = GenerateKeywords(300, 3);
  for (size_t i = 0; i < words.size(); ++i) {
    tree.Insert(words[i], i);
  }
  EXPECT_EQ(tree.size(), 300u);
  const auto result = check::CheckMTree(tree);
  EXPECT_TRUE(result.ok()) << result.Summary();
}

TEST(MTreeInsert, HeightGrowsWithData) {
  MTreeOptions options;
  options.node_size_bytes = 256;
  MTree<VecTraits> tree(LInfDistance{}, options);
  const auto points = GenerateUniform(600, 4, 13);
  uint32_t last_height = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(points[i], i);
    EXPECT_GE(tree.height(), last_height);  // Height never shrinks.
    last_height = tree.height();
  }
  EXPECT_GE(tree.height(), 3u);
}

TEST(MTreeInsert, ObjectLargerThanNodeRejected) {
  MTreeOptions options;
  options.node_size_bytes = 64;
  MTree<VecTraits> tree(LInfDistance{}, options);
  EXPECT_THROW(tree.Insert(FloatVector(100, 0.1f), 0), std::invalid_argument);
}

TEST(MTreeInsert, TinyNodeSizeStillProducesValidTree) {
  MTreeOptions options;
  // Room for barely three 2-d leaf entries.
  options.node_size_bytes = MTreeNode<VecTraits>::HeaderSize() +
                            3 * MTreeNode<VecTraits>::LeafEntrySize(
                                    FloatVector{0.0f, 0.0f});
  MTree<VecTraits> tree(LInfDistance{}, options);
  const auto points = GenerateUniform(120, 2, 17);
  for (size_t i = 0; i < points.size(); ++i) {
    tree.Insert(points[i], i);
  }
  EXPECT_EQ(tree.size(), 120u);
  const auto result = check::CheckMTree(tree);
  EXPECT_TRUE(result.ok()) << result.Summary();
}

TEST(MTreeInsert, NodeSizeTooSmallForConstructionRejected) {
  MTreeOptions options;
  options.node_size_bytes = 4;
  EXPECT_THROW(MTree<VecTraits>(LInfDistance{}, options),
               std::invalid_argument);
}

TEST(MTreeInsert, VariableLengthStringsRespectByteCapacity) {
  MTreeOptions options;
  options.node_size_bytes = 200;
  MTree<StrTraits> tree(EditDistanceMetric{}, options);
  // Mix of very short and near-25-char words.
  std::vector<std::string> words;
  for (const auto& w : GenerateKeywords(200, 21)) words.push_back(w);
  words.push_back(std::string(25, 'a'));
  words.push_back(std::string(25, 'b'));
  words.push_back("io");
  for (size_t i = 0; i < words.size(); ++i) {
    tree.Insert(words[i], i);
  }
  const auto result = check::CheckMTree(tree);
  EXPECT_TRUE(result.ok()) << result.Summary();
}

}  // namespace
}  // namespace mcm
