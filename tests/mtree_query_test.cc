// Query correctness: range and k-NN results must agree exactly with a
// linear scan, in both pruning modes, for vector and string spaces; the
// Basic-mode CPU counter must equal the sum of entries of accessed nodes
// (the quantity Eq. 7 models).

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/mtree/mtree.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;
using StrTraits = StringTraits<>;

template <typename Object, typename Metric>
std::vector<std::pair<double, uint64_t>> ScanRange(
    const std::vector<Object>& data, const Metric& metric, const Object& q,
    double radius) {
  std::vector<std::pair<double, uint64_t>> out;
  for (size_t i = 0; i < data.size(); ++i) {
    const double d = metric(q, data[i]);
    if (d <= radius) out.emplace_back(d, i);
  }
  std::sort(out.begin(), out.end());
  return out;
}

class PruningModeTest : public ::testing::TestWithParam<PruningMode> {};

TEST_P(PruningModeTest, RangeMatchesLinearScanVectors) {
  MTreeOptions options;
  options.node_size_bytes = 512;
  options.pruning = GetParam();
  const auto data = GenerateClustered(800, 6, 23);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 25, 6, 23);
  const LInfDistance metric;
  for (const auto& q : queries) {
    for (double radius : {0.0, 0.05, 0.2, 0.5, 1.0}) {
      const auto expected = ScanRange(data, metric, q, radius);
      const auto got = tree.RangeSearch(q, radius);
      ASSERT_EQ(got.size(), expected.size()) << "radius=" << radius;
      // Same oid set and sorted distances.
      std::multiset<uint64_t> want_ids, got_ids;
      for (const auto& [d, id] : expected) want_ids.insert(id);
      for (const auto& r : got) got_ids.insert(r.oid);
      EXPECT_EQ(got_ids, want_ids);
      for (size_t i = 0; i < got.size(); ++i) {
        EXPECT_NEAR(got[i].distance, expected[i].first, 1e-9);
      }
    }
  }
}

TEST_P(PruningModeTest, KnnMatchesLinearScanVectors) {
  MTreeOptions options;
  options.node_size_bytes = 512;
  options.pruning = GetParam();
  const auto data = GenerateClustered(600, 8, 29);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 20, 8, 29);
  const LInfDistance metric;
  for (const auto& q : queries) {
    for (size_t k : {1u, 5u, 20u}) {
      std::vector<double> all;
      for (const auto& p : data) all.push_back(metric(q, p));
      std::sort(all.begin(), all.end());
      const auto got = tree.KnnSearch(q, k);
      ASSERT_EQ(got.size(), k);
      for (size_t i = 0; i < k; ++i) {
        EXPECT_NEAR(got[i].distance, all[i], 1e-9) << "k=" << k << " i=" << i;
      }
    }
  }
}

TEST_P(PruningModeTest, RangeMatchesLinearScanStrings) {
  MTreeOptions options;
  options.node_size_bytes = 512;
  options.pruning = GetParam();
  const auto words = GenerateKeywords(700, 31);
  auto tree = MTree<StrTraits>::BulkLoad(words, EditDistanceMetric{}, options);
  const auto queries = GenerateKeywordQueries(15, 31);
  const EditDistanceMetric metric;
  for (const auto& q : queries) {
    for (double radius : {0.0, 1.0, 3.0, 6.0}) {
      const auto expected = ScanRange(words, metric, q, radius);
      const auto got = tree.RangeSearch(q, radius);
      ASSERT_EQ(got.size(), expected.size())
          << "q=" << q << " radius=" << radius;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Modes, PruningModeTest,
                         ::testing::Values(PruningMode::kBasic,
                                           PruningMode::kOptimized),
                         [](const auto& info) {
                           return info.param == PruningMode::kBasic
                                      ? "Basic"
                                      : "Optimized";
                         });

TEST(MTreeQuery, BasicModeDistancesEqualEntriesOfAccessedNodes) {
  // In kBasic mode dists == Σ e(N) over accessed nodes — the exact quantity
  // Eq. 7 predicts. Verify against an instrumented traversal.
  MTreeOptions options;
  options.node_size_bytes = 512;
  options.pruning = PruningMode::kBasic;
  const auto data = GenerateClustered(500, 5, 37);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 10, 5, 37);
  for (const auto& q : queries) {
    QueryStats stats;
    tree.RangeSearch(q, 0.15, &stats);
    // Recompute by replaying the traversal through the store counter.
    tree.store().ResetAccessCount();
    QueryStats replay;
    tree.RangeSearch(q, 0.15, &replay);
    EXPECT_EQ(replay.nodes_accessed, tree.store().access_count());
    EXPECT_EQ(stats.distance_computations, replay.distance_computations);
    EXPECT_GE(stats.distance_computations, stats.nodes_accessed);
  }
}

TEST(MTreeQuery, OptimizedModeNeverComputesMoreDistances) {
  MTreeOptions basic_opt;
  basic_opt.node_size_bytes = 512;
  basic_opt.pruning = PruningMode::kBasic;
  MTreeOptions fast_opt = basic_opt;
  fast_opt.pruning = PruningMode::kOptimized;

  const auto data = GenerateClustered(800, 6, 41);
  auto basic = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, basic_opt);
  auto fast = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, fast_opt);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 30, 6, 41);
  uint64_t saved = 0;
  for (const auto& q : queries) {
    QueryStats sb, sf;
    basic.RangeSearch(q, 0.2, &sb);
    fast.RangeSearch(q, 0.2, &sf);
    EXPECT_EQ(sb.nodes_accessed, sf.nodes_accessed);  // Same I/O.
    EXPECT_LE(sf.distance_computations, sb.distance_computations);
    saved += sb.distance_computations - sf.distance_computations;
  }
  EXPECT_GT(saved, 0u);  // The optimization saves something overall.
}

TEST(MTreeQuery, KnnAccessesMatchRangeAtKthDistance) {
  // The optimal k-NN algorithm accesses exactly the nodes a range query
  // with the k-th NN distance would access.
  MTreeOptions options;
  options.node_size_bytes = 512;
  const auto data = GenerateClustered(700, 7, 43);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 20, 7, 43);
  for (const auto& q : queries) {
    QueryStats knn_stats;
    const auto knn = tree.KnnSearch(q, 5, &knn_stats);
    ASSERT_EQ(knn.size(), 5u);
    QueryStats range_stats;
    tree.RangeSearch(q, knn.back().distance, &range_stats);
    EXPECT_EQ(knn_stats.nodes_accessed, range_stats.nodes_accessed);
  }
}

TEST(MTreeQuery, EmptyTreeAndDegenerateArguments) {
  MTree<VecTraits> tree(LInfDistance{}, MTreeOptions{});
  EXPECT_TRUE(tree.RangeSearch({0.5f}, 1.0).empty());
  EXPECT_TRUE(tree.KnnSearch({0.5f}, 3).empty());
  tree.Insert({0.5f}, 0);
  EXPECT_TRUE(tree.KnnSearch({0.5f}, 0).empty());
  EXPECT_TRUE(tree.RangeSearch({0.5f}, -1.0).empty());
}

TEST(MTreeQuery, KnnWithKLargerThanDatasetReturnsAll) {
  MTreeOptions options;
  options.node_size_bytes = 256;
  const auto data = GenerateUniform(20, 3, 47);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  const auto got = tree.KnnSearch({0.5f, 0.5f, 0.5f}, 50);
  EXPECT_EQ(got.size(), 20u);
  for (size_t i = 1; i < got.size(); ++i) {
    EXPECT_GE(got[i].distance, got[i - 1].distance);
  }
}

TEST(MTreeQuery, InsertedTreeAnswersLikeBulkLoadedTree) {
  MTreeOptions options;
  options.node_size_bytes = 512;
  const auto data = GenerateClustered(400, 5, 53);
  auto bulk = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  MTree<VecTraits> incremental(LInfDistance{}, options);
  for (size_t i = 0; i < data.size(); ++i) incremental.Insert(data[i], i);

  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 15, 5, 53);
  for (const auto& q : queries) {
    const auto a = bulk.RangeSearch(q, 0.25);
    const auto b = incremental.RangeSearch(q, 0.25);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_NEAR(a[i].distance, b[i].distance, 1e-9);
    }
  }
}

TEST(MTreeQuery, RangeWithFullRadiusReturnsEverything) {
  MTreeOptions options;
  options.node_size_bytes = 256;
  const auto data = GenerateUniform(150, 4, 59);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  QueryStats stats;
  const auto all = tree.RangeSearch({0.5f, 0.5f, 0.5f, 0.5f}, 1.0, &stats);
  EXPECT_EQ(all.size(), 150u);
  // Every node must have been read.
  EXPECT_EQ(stats.nodes_accessed, tree.store().NumNodes());
  // Basic mode computes one distance per entry of every accessed node:
  // n leaf entries plus one routing entry per non-root node.
  EXPECT_EQ(stats.distance_computations,
            150u + tree.store().NumNodes() - 1u);
}

}  // namespace
}  // namespace mcm
