// N-MCM tests: algebraic identities of Eqs. 6-8, boundary behavior, and
// model-vs-measured accuracy on seeded datasets (the paper reports <= 4%
// range errors for N-MCM; we assert a safe 20% band to stay robust across
// toolchains while still catching real regressions).

#include <gtest/gtest.h>

#include "mcm/bench_util/experiment.h"
#include "mcm/cost/nmcm.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;

struct Fixture {
  std::vector<FloatVector> data;
  std::vector<FloatVector> queries;
  MTree<VecTraits> tree;
  DistanceHistogram histogram;
  MTreeStatsView stats;

  static Fixture Make(size_t n, size_t dim, uint64_t seed,
                      VectorDatasetKind kind = VectorDatasetKind::kClustered) {
    MTreeOptions options;
    auto data = GenerateVectorDataset(kind, n, dim, seed);
    auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
    EstimatorOptions eo;
    eo.num_bins = 100;
    eo.d_plus = 1.0;
    auto hist = EstimateDistanceDistribution(data, LInfDistance{}, eo);
    auto stats = tree.CollectStats(1.0);
    return Fixture{std::move(data),
                   GenerateVectorQueries(kind, 200, dim, seed),
                   std::move(tree), std::move(hist), std::move(stats)};
  }
};

TEST(NodeBasedCostModel, FullRadiusAccessesEveryNode) {
  auto f = Fixture::Make(2000, 6, 103);
  const NodeBasedCostModel model(f.histogram, f.stats);
  // At r_Q = d⁺ every F(r_i + r_Q) = 1: all M nodes, all entries.
  EXPECT_NEAR(model.RangeNodes(1.0), static_cast<double>(f.stats.num_nodes()),
              1e-9);
  double total_entries = 0.0;
  for (const auto& node : f.stats.nodes) total_entries += node.num_entries;
  EXPECT_NEAR(model.RangeDistances(1.0), total_entries, 1e-9);
  EXPECT_NEAR(model.RangeObjects(1.0), 2000.0, 1e-9);
}

TEST(NodeBasedCostModel, CostsMonotoneInRadius) {
  auto f = Fixture::Make(2000, 8, 107);
  const NodeBasedCostModel model(f.histogram, f.stats);
  double prev_nodes = 0.0, prev_dists = 0.0;
  for (double r = 0.0; r <= 1.0; r += 0.05) {
    const double nodes = model.RangeNodes(r);
    const double dists = model.RangeDistances(r);
    EXPECT_GE(nodes, prev_nodes - 1e-12);
    EXPECT_GE(dists, prev_dists - 1e-12);
    prev_nodes = nodes;
    prev_dists = dists;
  }
  // The root is always accessed: F(d⁺ + r) = 1 even at r = 0.
  EXPECT_GE(model.RangeNodes(0.0), 1.0);
}

TEST(NodeBasedCostModel, RangeAccuracyOnClusteredData) {
  auto f = Fixture::Make(10000, 20, 1);
  const NodeBasedCostModel model(f.histogram, f.stats);
  const double rq = std::pow(0.01, 1.0 / 20.0) / 2.0;  // Paper's Fig. 1.
  const auto measured = MeasureRange(f.tree, f.queries, rq);
  EXPECT_NEAR(model.RangeNodes(rq), measured.avg_nodes,
              0.20 * measured.avg_nodes);
  EXPECT_NEAR(model.RangeDistances(rq), measured.avg_dists,
              0.20 * measured.avg_dists);
  EXPECT_NEAR(model.RangeObjects(rq), measured.avg_results,
              0.10 * measured.avg_results + 1.0);
}

TEST(NodeBasedCostModel, RangeAccuracyOnUniformData) {
  auto f = Fixture::Make(5000, 10, 3, VectorDatasetKind::kUniform);
  const NodeBasedCostModel model(f.histogram, f.stats);
  const double rq = std::pow(0.01, 1.0 / 10.0) / 2.0;
  const auto measured = MeasureRange(f.tree, f.queries, rq);
  EXPECT_NEAR(model.RangeNodes(rq), measured.avg_nodes,
              0.20 * measured.avg_nodes);
  EXPECT_NEAR(model.RangeDistances(rq), measured.avg_dists,
              0.20 * measured.avg_dists);
}

TEST(NodeBasedCostModel, NnAccuracyOnClusteredData) {
  auto f = Fixture::Make(10000, 20, 1);
  const NodeBasedCostModel model(f.histogram, f.stats);
  const auto measured = MeasureKnn(f.tree, f.queries, 1);
  // NN errors run higher than range errors (paper Fig. 2); allow 30%.
  EXPECT_NEAR(model.NnNodes(1), measured.avg_nodes,
              0.30 * measured.avg_nodes);
  EXPECT_NEAR(model.NnDistances(1), measured.avg_dists,
              0.30 * measured.avg_dists);
  EXPECT_NEAR(model.nn_model().ExpectedNnDistance(1),
              measured.avg_kth_distance,
              0.25 * measured.avg_kth_distance + 0.02);
}

TEST(NodeBasedCostModel, NnCostsIncreaseWithK) {
  auto f = Fixture::Make(3000, 10, 109);
  const NodeBasedCostModel model(f.histogram, f.stats);
  double prev_nodes = 0.0;
  for (size_t k : {1u, 5u, 20u, 100u}) {
    const double nodes = model.NnNodes(k);
    EXPECT_GT(nodes, prev_nodes);
    EXPECT_LE(nodes, static_cast<double>(f.stats.num_nodes()) + 1e-9);
    prev_nodes = nodes;
  }
}

TEST(NodeBasedCostModel, NnCostsForGeneralKMatchMeasurement) {
  auto f = Fixture::Make(5000, 12, 113);
  const NodeBasedCostModel model(f.histogram, f.stats);
  for (size_t k : {5u, 20u}) {
    const auto measured = MeasureKnn(f.tree, f.queries, k);
    EXPECT_NEAR(model.NnNodes(k), measured.avg_nodes,
                0.30 * measured.avg_nodes)
        << "k=" << k;
    EXPECT_NEAR(model.nn_model().ExpectedNnDistance(k),
                measured.avg_kth_distance,
                0.25 * measured.avg_kth_distance + 0.02)
        << "k=" << k;
  }
}

}  // namespace
}  // namespace mcm
