#include "mcm/cost/nn_distance.h"

#include <cmath>

#include <gtest/gtest.h>

#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/vector_metrics.h"

namespace mcm {
namespace {

DistanceHistogram UniformishHistogram() {
  // A smooth synthetic F over [0, 1].
  std::vector<double> samples;
  for (int i = 1; i < 1000; ++i) {
    samples.push_back(std::sqrt(static_cast<double>(i) / 1000.0));
  }
  return DistanceHistogram(samples, 100, 1.0);
}

TEST(NnDistanceModel, ProbMatchesClosedFormForKOne) {
  const auto h = UniformishHistogram();
  const NnDistanceModel model(h, 500);
  for (double r = 0.05; r < 1.0; r += 0.1) {
    const double expected = 1.0 - std::pow(1.0 - h.Cdf(r), 500.0);
    EXPECT_NEAR(model.ProbNnWithin(r, 1), expected, 1e-10) << "r=" << r;
  }
}

TEST(NnDistanceModel, ProbMonotoneInRadiusAndK) {
  const auto h = UniformishHistogram();
  const NnDistanceModel model(h, 200);
  double prev = -1.0;
  for (double r = 0.0; r <= 1.0; r += 0.02) {
    const double p = model.ProbNnWithin(r, 3);
    EXPECT_GE(p, prev - 1e-12);
    prev = p;
  }
  for (size_t k = 1; k < 10; ++k) {
    EXPECT_GE(model.ProbNnWithin(0.3, k),
              model.ProbNnWithin(0.3, k + 1) - 1e-12);
  }
}

TEST(NnDistanceModel, ProbZeroBeyondDatasetSize) {
  const auto h = UniformishHistogram();
  const NnDistanceModel model(h, 10);
  EXPECT_DOUBLE_EQ(model.ProbNnWithin(0.5, 11), 0.0);
  EXPECT_GT(model.ProbNnWithin(1.0, 10), 0.99);
}

TEST(NnDistanceModel, ExpectedDistanceDecreasesWithN) {
  const auto h = UniformishHistogram();
  double prev = 2.0;
  for (size_t n : {10u, 100u, 1000u, 10000u}) {
    const NnDistanceModel model(h, n);
    const double e = model.ExpectedNnDistance(1);
    EXPECT_LT(e, prev);
    EXPECT_GT(e, 0.0);
    prev = e;
  }
}

TEST(NnDistanceModel, ExpectedDistanceIncreasesWithK) {
  const auto h = UniformishHistogram();
  const NnDistanceModel model(h, 1000);
  double prev = 0.0;
  for (size_t k : {1u, 2u, 5u, 10u, 50u}) {
    const double e = model.ExpectedNnDistance(k);
    EXPECT_GT(e, prev);
    prev = e;
  }
}

TEST(NnDistanceModel, ExpectedDistanceMatchesEmpiricalNn) {
  // Compare E[nn_{Q,1}] against a brute-force measurement on uniform data.
  const size_t n = 2000, D = 8;
  const auto data = GenerateUniform(n, D, 7);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kUniform, 150, D, 7);
  EstimatorOptions eo;
  eo.num_bins = 100;
  eo.d_plus = 1.0;
  const auto h = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const NnDistanceModel model(h, n);

  LInfDistance metric;
  double measured = 0.0;
  for (const auto& q : queries) {
    double best = 1.0;
    for (const auto& p : data) best = std::min(best, metric(q, p));
    measured += best;
  }
  measured /= static_cast<double>(queries.size());
  EXPECT_NEAR(model.ExpectedNnDistance(1), measured, 0.15 * measured + 0.01);
}

TEST(NnDistanceModel, RadiusForExpectedObjects) {
  const auto h = UniformishHistogram();
  const NnDistanceModel model(h, 1000);
  const double r1 = model.RadiusForExpectedObjects(1.0);
  EXPECT_NEAR(h.Cdf(r1) * 1000.0, 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(model.RadiusForExpectedObjects(0.0), 0.0);
  EXPECT_DOUBLE_EQ(model.RadiusForExpectedObjects(2000.0), 1.0);
  EXPECT_GT(model.RadiusForExpectedObjects(100.0), r1);
}

TEST(NnDistanceModel, DensityIntegratesToOne) {
  const auto h = UniformishHistogram();
  for (size_t n : {10u, 1000u}) {
    const NnDistanceModel model(h, n);
    for (size_t k : {1u, 3u}) {
      const double mass = model.IntegrateAgainstNnDensity(
          [](double) { return 1.0; }, k);
      EXPECT_NEAR(mass, 1.0, 1e-6) << "n=" << n << " k=" << k;
    }
  }
}

TEST(NnDistanceModel, IntegralOfIdentityEqualsExpectedDistance) {
  const auto h = UniformishHistogram();
  const NnDistanceModel model(h, 500);
  const double via_integral = model.IntegrateAgainstNnDensity(
      [](double r) { return r; }, 1);
  EXPECT_NEAR(via_integral, model.ExpectedNnDistance(1), 1e-3);
}

TEST(NnDistanceModel, StableAtMillionObjects) {
  const auto h = UniformishHistogram();
  const NnDistanceModel model(h, 1000000);
  const double e = model.ExpectedNnDistance(1);
  EXPECT_TRUE(std::isfinite(e));
  EXPECT_GT(e, 0.0);
  EXPECT_LT(e, 0.05);
  // At n = 10^6 both E[nn_1] and E[nn_20] collapse onto the histogram's
  // first nonzero-F point (resolution limit), so only >= is guaranteed.
  const double e20 = model.ExpectedNnDistance(20);
  EXPECT_GE(e20, e - 1e-12);
}

TEST(NnDistanceModel, ConstructionErrors) {
  const auto h = UniformishHistogram();
  EXPECT_THROW(NnDistanceModel(h, 0), std::invalid_argument);
  EXPECT_THROW(NnDistanceModel(h, 10, 0), std::invalid_argument);
  const NnDistanceModel model(h, 10);
  EXPECT_THROW(model.ProbNnWithin(0.5, 0), std::invalid_argument);
}

}  // namespace
}  // namespace mcm
