// Decoded-node cache (storage/decoded_cache.h + PagedNodeStore wiring):
// LRU/versioning unit tests, then the invalidation protocol end-to-end —
// mutate an M-tree through a warmed cache and require the tree to stay
// structurally valid and every query answer to stay bit-identical to a
// cold-cache (and cache-off) run, sequentially and under the concurrent
// batch executor.

#include "mcm/storage/decoded_cache.h"

#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "mcm/check/check_mtree.h"
#include "mcm/common/query_stats.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/engine/executor.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/storage/page_file.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;

std::shared_ptr<const int> Box(int v) { return std::make_shared<int>(v); }

TEST(DecodedNodeCache, CapacityZeroDisablesEverything) {
  DecodedNodeCache<int> cache(0);
  EXPECT_FALSE(cache.enabled());
  const uint64_t version = cache.Version(7);
  cache.Insert(7, version, Box(1));
  EXPECT_EQ(cache.Lookup(7), nullptr);
  EXPECT_EQ(cache.size(), 0u);
}

TEST(DecodedNodeCache, LookupAfterInsertHitsAndCountsAreExact) {
  DecodedNodeCache<int> cache(8, 1);
  EXPECT_TRUE(cache.enabled());
  EXPECT_EQ(cache.Lookup(1), nullptr);  // Miss.
  cache.Insert(1, cache.Version(1), Box(10));
  const auto hit = cache.Lookup(1);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 10);
  const auto stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(DecodedNodeCache, LruEvictsLeastRecentlyUsed) {
  // Single shard so the LRU order is global and deterministic.
  DecodedNodeCache<int> cache(2, 1);
  cache.Insert(1, cache.Version(1), Box(1));
  cache.Insert(2, cache.Version(2), Box(2));
  ASSERT_NE(cache.Lookup(1), nullptr);  // 1 becomes most recent.
  cache.Insert(3, cache.Version(3), Box(3));  // Evicts 2, not 1.
  EXPECT_NE(cache.Lookup(1), nullptr);
  EXPECT_EQ(cache.Lookup(2), nullptr);
  EXPECT_NE(cache.Lookup(3), nullptr);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_EQ(cache.size(), 2u);
}

TEST(DecodedNodeCache, InvalidateErasesAndBlocksInFlightInsert) {
  DecodedNodeCache<int> cache(8, 1);
  cache.Insert(5, cache.Version(5), Box(50));
  ASSERT_NE(cache.Lookup(5), nullptr);

  // The write-race guard: a reader captured the version, then a writer
  // invalidated while the reader was decoding. The reader's Insert must be
  // dropped — publishing it would cache pre-write bytes.
  const uint64_t stale_version = cache.Version(5);
  cache.Invalidate(5);
  EXPECT_EQ(cache.Lookup(5), nullptr);
  cache.Insert(5, stale_version, Box(999));
  EXPECT_EQ(cache.Lookup(5), nullptr) << "stale decoded node was published";
  const auto stats = cache.stats();
  EXPECT_EQ(stats.invalidations, 1u);
  EXPECT_EQ(stats.stale_inserts, 1u);

  // A fresh capture after the invalidation publishes normally.
  cache.Insert(5, cache.Version(5), Box(51));
  const auto hit = cache.Lookup(5);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(*hit, 51);
}

TEST(DecodedNodeCache, ClearDropsEntriesAndBumpsVersions) {
  DecodedNodeCache<int> cache(8, 1);
  const uint64_t before = cache.Version(1);
  cache.Insert(1, before, Box(1));
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  cache.Insert(1, before, Box(1));  // Version moved: dropped.
  EXPECT_EQ(cache.Lookup(1), nullptr);
}

TEST(DecodedNodeCache, ShardingPartitionsCapacity) {
  DecodedNodeCache<int> cache(256);
  EXPECT_GT(cache.num_shards(), 1u);
  for (uint64_t k = 0; k < 256; ++k) {
    cache.Insert(k, cache.Version(k), Box(static_cast<int>(k)));
  }
  EXPECT_LE(cache.size(), 256u);
  EXPECT_GT(cache.size(), 0u);
}

// ---------------------------------------------------------------------------
// End-to-end through PagedNodeStore + MTree.
// ---------------------------------------------------------------------------

struct PagedTree {
  PagedNodeStore<VecTraits>* store = nullptr;
  MTree<VecTraits> tree;
};

PagedTree BuildPagedTree(const std::vector<FloatVector>& data,
                         const MTreeOptions& options,
                         int64_t cache_entries) {
  auto store = std::make_unique<PagedNodeStore<VecTraits>>(
      std::make_unique<InMemoryPageFile>(options.node_size_bytes),
      /*pool_frames=*/4096, cache_entries);
  auto* raw = store.get();
  return {raw, MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options,
                                          std::move(store))};
}

template <typename Results>
void ExpectBitIdentical(const Results& a, const Results& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].oid, b[i].oid);
    EXPECT_EQ(a[i].distance, b[i].distance);
  }
}

TEST(NodeCacheIntegration, WarmCacheServesHitsWithoutChangingAnswers) {
  MTreeOptions options;
  options.node_size_bytes = 1024;
  const auto data = GenerateClustered(1500, 6, 601);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 12, 6, 601);
  auto cached = BuildPagedTree(data, options, /*cache_entries=*/4096);
  auto uncached = BuildPagedTree(data, options, /*cache_entries=*/0);
  EXPECT_TRUE(cached.store->node_cache().enabled());
  EXPECT_FALSE(uncached.store->node_cache().enabled());
  for (int pass = 0; pass < 2; ++pass) {  // Second pass runs fully warm.
    for (const auto& q : queries) {
      QueryStats sc, su;
      ExpectBitIdentical(cached.tree.RangeSearch(q, 0.25, &sc),
                         uncached.tree.RangeSearch(q, 0.25, &su));
      // Logical costs are the paper's model inputs: cache must not move
      // them.
      EXPECT_EQ(sc.nodes_accessed, su.nodes_accessed);
      EXPECT_EQ(sc.distance_computations, su.distance_computations);
      ExpectBitIdentical(cached.tree.KnnSearch(q, 8, &sc),
                         uncached.tree.KnnSearch(q, 8, &su));
    }
  }
  const auto stats = cached.store->node_cache().stats();
  EXPECT_GT(stats.hits, 0u) << "warm pass never hit the cache";
  EXPECT_EQ(uncached.store->node_cache().stats().hits, 0u);
}

TEST(NodeCacheIntegration, MutationsInvalidateAndKeepTreeValid) {
  MTreeOptions options;
  options.node_size_bytes = 1024;
  const auto data = GenerateClustered(1200, 6, 607);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 10, 6, 607);
  const auto extra = GenerateVectorQueries(VectorDatasetKind::kClustered,
                                           60, 6, 991);
  auto cached = BuildPagedTree(data, options, /*cache_entries=*/4096);
  auto uncached = BuildPagedTree(data, options, /*cache_entries=*/0);

  // Warm the cache so the subsequent inserts/deletes hit cached nodes.
  for (const auto& q : queries) {
    cached.tree.RangeSearch(q, 0.3);
    uncached.tree.RangeSearch(q, 0.3);
  }
  EXPECT_GT(cached.store->node_cache().size(), 0u);

  // Identical mutation sequence on both trees: inserts force splits and
  // write-backs of cached nodes; deletes force underflow handling.
  for (size_t i = 0; i < extra.size(); ++i) {
    cached.tree.Insert(extra[i], 100000 + i);
    uncached.tree.Insert(extra[i], 100000 + i);
  }
  for (size_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(cached.tree.Delete(data[i], i));
    ASSERT_TRUE(uncached.tree.Delete(data[i], i));
  }
  EXPECT_GT(cached.store->node_cache().stats().invalidations, 0u);

  // The tree behind the warmed cache is still structurally valid.
  const auto result = check::CheckMTree(cached.tree);
  EXPECT_TRUE(result.ok()) << result.Summary();

  // And every answer is bit-identical to the cache-off tree — stale
  // decoded nodes would show up here as wrong oids or distances.
  for (const auto& q : queries) {
    ExpectBitIdentical(cached.tree.RangeSearch(q, 0.3),
                       uncached.tree.RangeSearch(q, 0.3));
    ExpectBitIdentical(cached.tree.KnnSearch(q, 6),
                       uncached.tree.KnnSearch(q, 6));
  }

  // Belt and braces: a fully cold run (cleared cache) agrees too.
  cached.store->node_cache().Clear();
  for (const auto& q : queries) {
    ExpectBitIdentical(cached.tree.RangeSearch(q, 0.3),
                       uncached.tree.RangeSearch(q, 0.3));
  }
}

TEST(NodeCacheIntegration, ConcurrentBatchIsBitIdenticalToSequential) {
  MTreeOptions options;
  options.node_size_bytes = 1024;
  const auto data = GenerateClustered(1500, 6, 613);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 32, 6, 613);
  auto cached = BuildPagedTree(data, options, /*cache_entries=*/2048);

  // Sequential reference answers (these also warm the cache).
  std::vector<std::vector<SearchResult<FloatVector>>> expected_range;
  std::vector<std::vector<SearchResult<FloatVector>>> expected_knn;
  for (const auto& q : queries) {
    expected_range.push_back(cached.tree.RangeSearch(q, 0.25));
    expected_knn.push_back(cached.tree.KnnSearch(q, 8));
  }

  engine::ExecutorOptions exec_options;
  exec_options.num_threads = 4;
  const engine::BatchExecutor<MTree<VecTraits>> executor(cached.tree,
                                                         exec_options);
  ASSERT_EQ(executor.num_threads(), 4u);
  const auto range_batch = executor.RangeSearchBatch(queries, 0.25);
  const auto knn_batch = executor.KnnSearchBatch(queries, 8);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectBitIdentical(range_batch.results[i], expected_range[i]);
    ExpectBitIdentical(knn_batch.results[i], expected_knn[i]);
  }
  EXPECT_GT(cached.store->node_cache().stats().hits, 0u);
}

}  // namespace
}  // namespace mcm
