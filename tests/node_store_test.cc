#include "mcm/mtree/node_store.h"

#include <memory>

#include <gtest/gtest.h>

#include "mcm/metric/traits.h"

namespace mcm {
namespace {

using Traits = VectorTraits<LInfDistance>;
using Node = MTreeNode<Traits>;

template <typename T>
std::unique_ptr<NodeStore<Traits>> MakeStore();

template <>
std::unique_ptr<NodeStore<Traits>> MakeStore<MemoryNodeStore<Traits>>() {
  return std::make_unique<MemoryNodeStore<Traits>>();
}

template <>
std::unique_ptr<NodeStore<Traits>> MakeStore<PagedNodeStore<Traits>>() {
  return std::make_unique<PagedNodeStore<Traits>>(
      std::make_unique<InMemoryPageFile>(512), 16);
}

template <typename T>
class NodeStoreTest : public ::testing::Test {};

using StoreTypes =
    ::testing::Types<MemoryNodeStore<Traits>, PagedNodeStore<Traits>>;
TYPED_TEST_SUITE(NodeStoreTest, StoreTypes);

TYPED_TEST(NodeStoreTest, WriteReadRoundTrip) {
  auto store = MakeStore<TypeParam>();
  const NodeId id = store->Allocate();
  Node node;
  node.is_leaf = true;
  node.leaf_entries.push_back({{0.25f, 0.75f}, 11, 0.5});
  store->Write(id, node);
  const Node out = store->Read(id);
  ASSERT_EQ(out.leaf_entries.size(), 1u);
  EXPECT_EQ(out.leaf_entries[0].oid, 11u);
  EXPECT_EQ(out.leaf_entries[0].object, (FloatVector{0.25f, 0.75f}));
}

TYPED_TEST(NodeStoreTest, AccessCounterCountsReadsOnly) {
  auto store = MakeStore<TypeParam>();
  const NodeId id = store->Allocate();
  Node node;
  store->Write(id, node);
  EXPECT_EQ(store->access_count(), 0u);
  store->Read(id);
  store->Read(id);
  EXPECT_EQ(store->access_count(), 2u);
  store->ResetAccessCount();
  EXPECT_EQ(store->access_count(), 0u);
}

TYPED_TEST(NodeStoreTest, MultipleNodesKeepDistinctContents) {
  auto store = MakeStore<TypeParam>();
  std::vector<NodeId> ids;
  for (uint64_t i = 0; i < 10; ++i) {
    const NodeId id = store->Allocate();
    Node node;
    node.leaf_entries.push_back({{static_cast<float>(i)}, i, 0.0});
    store->Write(id, node);
    ids.push_back(id);
  }
  EXPECT_EQ(store->NumNodes(), 10u);
  for (uint64_t i = 0; i < 10; ++i) {
    EXPECT_EQ(store->Read(ids[i]).leaf_entries[0].oid, i);
  }
}

TYPED_TEST(NodeStoreTest, FreeReducesLiveCount) {
  auto store = MakeStore<TypeParam>();
  const NodeId a = store->Allocate();
  store->Allocate();
  EXPECT_EQ(store->NumNodes(), 2u);
  store->Free(a);
  EXPECT_EQ(store->NumNodes(), 1u);
}

TEST(MemoryNodeStore, ReadAfterFreeThrows) {
  MemoryNodeStore<Traits> store;
  const NodeId id = store.Allocate();
  store.Free(id);
  EXPECT_THROW(store.Read(id), std::out_of_range);
}

TEST(PagedNodeStore, OversizedNodeRejected) {
  PagedNodeStore<Traits> store(std::make_unique<InMemoryPageFile>(64), 4);
  const NodeId id = store.Allocate();
  Node node;
  node.leaf_entries.push_back({FloatVector(100, 0.0f), 1, 0.0});
  EXPECT_THROW(store.Write(id, node), std::runtime_error);
}

TEST(PagedNodeStore, SurvivesBufferPoolPressure) {
  // Pool holds 2 frames; write 20 nodes, then read them all back.
  PagedNodeStore<Traits> store(std::make_unique<InMemoryPageFile>(256), 2);
  std::vector<NodeId> ids;
  for (uint64_t i = 0; i < 20; ++i) {
    const NodeId id = store.Allocate();
    Node node;
    node.leaf_entries.push_back({{static_cast<float>(i), 0.0f}, i, 0.0});
    store.Write(id, node);
    ids.push_back(id);
  }
  for (uint64_t i = 0; i < 20; ++i) {
    EXPECT_EQ(store.Read(ids[i]).leaf_entries[0].oid, i);
  }
  EXPECT_GT(store.pool().stats().evictions, 0u);
}

}  // namespace
}  // namespace mcm
