#include "mcm/mtree/node.h"

#include <gtest/gtest.h>

#include "mcm/metric/traits.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;
using StrTraits = StringTraits<>;

TEST(MTreeNode, LeafSerializationRoundTripVectors) {
  MTreeNode<VecTraits> node;
  node.is_leaf = true;
  node.leaf_entries.push_back({{0.1f, 0.2f, 0.3f}, 42, 0.5});
  node.leaf_entries.push_back({{0.9f, 0.8f, 0.7f}, 43, 0.25});

  std::vector<uint8_t> buf;
  node.Serialize(&buf);
  EXPECT_EQ(buf.size(), node.SerializedSize());

  const auto parsed = MTreeNode<VecTraits>::Deserialize(buf.data(), buf.size());
  ASSERT_TRUE(parsed.is_leaf);
  ASSERT_EQ(parsed.leaf_entries.size(), 2u);
  EXPECT_EQ(parsed.leaf_entries[0].object, (FloatVector{0.1f, 0.2f, 0.3f}));
  EXPECT_EQ(parsed.leaf_entries[0].oid, 42u);
  EXPECT_DOUBLE_EQ(parsed.leaf_entries[0].parent_distance, 0.5);
  EXPECT_EQ(parsed.leaf_entries[1].oid, 43u);
}

TEST(MTreeNode, InternalSerializationRoundTripStrings) {
  MTreeNode<StrTraits> node;
  node.is_leaf = false;
  node.routing_entries.push_back({"parola", 2.5, 1.0, 7});
  node.routing_entries.push_back({"verso", 3.0, 2.0, 9});

  std::vector<uint8_t> buf;
  node.Serialize(&buf);
  EXPECT_EQ(buf.size(), node.SerializedSize());

  const auto parsed = MTreeNode<StrTraits>::Deserialize(buf.data(), buf.size());
  ASSERT_FALSE(parsed.is_leaf);
  ASSERT_EQ(parsed.routing_entries.size(), 2u);
  EXPECT_EQ(parsed.routing_entries[0].object, "parola");
  EXPECT_DOUBLE_EQ(parsed.routing_entries[0].covering_radius, 2.5);
  EXPECT_EQ(parsed.routing_entries[0].child, 7u);
  EXPECT_EQ(parsed.routing_entries[1].object, "verso");
}

TEST(MTreeNode, EmptyNodeRoundTrip) {
  MTreeNode<VecTraits> node;
  std::vector<uint8_t> buf;
  node.Serialize(&buf);
  EXPECT_EQ(buf.size(), MTreeNode<VecTraits>::HeaderSize());
  const auto parsed = MTreeNode<VecTraits>::Deserialize(buf.data(), buf.size());
  EXPECT_TRUE(parsed.is_leaf);
  EXPECT_EQ(parsed.NumEntries(), 0u);
}

TEST(MTreeNode, EntrySizesAccountForObjectPayload) {
  const FloatVector v(10, 0.5f);
  EXPECT_EQ(MTreeNode<VecTraits>::LeafEntrySize(v),
            4u + 40u + 8u + 8u);  // dim prefix + floats + oid + parent dist.
  EXPECT_EQ(MTreeNode<VecTraits>::RoutingEntrySize(v),
            4u + 40u + 8u + 8u + 4u);  // + radius replaces oid, + child id.
  EXPECT_EQ(MTreeNode<StrTraits>::LeafEntrySize("abcde"), 4u + 5u + 8u + 8u);
}

TEST(MTreeNode, DeserializeTruncatedBufferThrows) {
  MTreeNode<VecTraits> node;
  node.leaf_entries.push_back({{0.5f}, 1, 0.0});
  std::vector<uint8_t> buf;
  node.Serialize(&buf);
  EXPECT_THROW(
      MTreeNode<VecTraits>::Deserialize(buf.data(), buf.size() - 4),
      std::out_of_range);
}

}  // namespace
}  // namespace mcm
