#include "mcm/common/numeric.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(LogBinomial, SmallValuesMatchExactCoefficients) {
  EXPECT_NEAR(std::exp(LogBinomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(LogBinomial(10, 3)), 120.0, 1e-6);
  EXPECT_NEAR(std::exp(LogBinomial(6, 6)), 1.0, 1e-12);
  EXPECT_NEAR(std::exp(LogBinomial(6, 0)), 1.0, 1e-12);
}

TEST(LogBinomial, SymmetricInK) {
  EXPECT_NEAR(LogBinomial(40, 7), LogBinomial(40, 33), 1e-9);
}

TEST(LogBinomial, LargeNDoesNotOverflow) {
  const double v = LogBinomial(1000000, 500000);
  EXPECT_TRUE(std::isfinite(v));
  EXPECT_GT(v, 0.0);
}

TEST(LogBinomial, ThrowsWhenKExceedsN) {
  EXPECT_THROW(LogBinomial(3, 4), std::invalid_argument);
}

TEST(BinomialLowerTail, MatchesDirectSumForSmallN) {
  // P(X < 2) for X ~ Binomial(4, 0.3).
  const double p = 0.3;
  const double expected = std::pow(1 - p, 4) + 4 * p * std::pow(1 - p, 3);
  EXPECT_NEAR(BinomialLowerTail(4, 2, p), expected, 1e-12);
}

TEST(BinomialLowerTail, EdgeProbabilities) {
  EXPECT_DOUBLE_EQ(BinomialLowerTail(10, 3, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialLowerTail(10, 3, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialLowerTail(10, 11, 1.0), 1.0);
}

TEST(BinomialLowerTail, ClampsPOutsideUnitInterval) {
  EXPECT_DOUBLE_EQ(BinomialLowerTail(10, 1, -0.5), 1.0);
  EXPECT_DOUBLE_EQ(BinomialLowerTail(10, 1, 1.5), 0.0);
}

TEST(BinomialLowerTail, MonotoneDecreasingInP) {
  double prev = 1.0;
  for (double p = 0.0; p <= 1.0; p += 0.05) {
    const double tail = BinomialLowerTail(50, 5, p);
    EXPECT_LE(tail, prev + 1e-12);
    prev = tail;
  }
}

TEST(BinomialLowerTail, MonotoneIncreasingInK) {
  double prev = 0.0;
  for (uint64_t k = 1; k <= 20; ++k) {
    const double tail = BinomialLowerTail(20, k, 0.4);
    EXPECT_GE(tail, prev - 1e-12);
    prev = tail;
  }
}

TEST(BinomialLowerTail, StableForHugeNAndTinyP) {
  // n = 10^6, p = 10^-7: expect ~e^{-0.1} for the k=1 tail.
  const double tail = BinomialLowerTail(1000000, 1, 1e-7);
  EXPECT_NEAR(tail, std::exp(-0.1), 1e-3);
}

TEST(BinomialLowerTail, ThrowsForKZero) {
  EXPECT_THROW(BinomialLowerTail(10, 0, 0.5), std::invalid_argument);
}

TEST(TrapezoidIntegrate, ExactForLinearFunctions) {
  const double integral = TrapezoidIntegrate(
      [](double x) { return 3.0 * x + 1.0; }, 0.0, 2.0, 4);
  EXPECT_NEAR(integral, 8.0, 1e-12);
}

TEST(TrapezoidIntegrate, ConvergesForQuadratic) {
  const double integral =
      TrapezoidIntegrate([](double x) { return x * x; }, 0.0, 1.0, 1000);
  EXPECT_NEAR(integral, 1.0 / 3.0, 1e-6);
}

TEST(TrapezoidIntegrate, EmptyIntervalIsZero) {
  EXPECT_DOUBLE_EQ(
      TrapezoidIntegrate([](double) { return 7.0; }, 1.0, 1.0, 10), 0.0);
}

TEST(TrapezoidIntegrate, ThrowsForZeroSteps) {
  EXPECT_THROW(TrapezoidIntegrate([](double) { return 1.0; }, 0.0, 1.0, 0),
               std::invalid_argument);
}

TEST(TrapezoidIntegrate, SampledOverloadMatchesFunctional) {
  std::vector<double> values;
  const size_t steps = 64;
  for (size_t i = 0; i <= steps; ++i) {
    const double x = static_cast<double>(i) / steps;
    values.push_back(std::sin(x));
  }
  const double a = TrapezoidIntegrate(values, 1.0 / steps);
  const double b = TrapezoidIntegrate([](double x) { return std::sin(x); },
                                      0.0, 1.0, steps);
  EXPECT_NEAR(a, b, 1e-12);
}

TEST(TrapezoidIntegrate, SampledFewerThanTwoPointsIsZero) {
  EXPECT_DOUBLE_EQ(TrapezoidIntegrate(std::vector<double>{5.0}, 0.1), 0.0);
  EXPECT_DOUBLE_EQ(TrapezoidIntegrate(std::vector<double>{}, 0.1), 0.0);
}

TEST(RelativeError, NormalAndZeroReference) {
  EXPECT_DOUBLE_EQ(RelativeError(11.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(9.0, 10.0), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(0.5, 0.0), 0.5);
}

TEST(Clamp, AllBranches) {
  EXPECT_DOUBLE_EQ(Clamp(0.5, 0.0, 1.0), 0.5);
  EXPECT_DOUBLE_EQ(Clamp(-1.0, 0.0, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(Clamp(2.0, 0.0, 1.0), 1.0);
}

}  // namespace
}  // namespace mcm
