#include "mcm/obs/export.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

namespace mcm {
namespace {

TEST(JsonEscapeTest, EscapesControlAndQuoteCharacters) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
}

TEST(JsonNumberTest, RoundTripsAndHandlesNonFinite) {
  EXPECT_EQ(JsonNumber(1.0), "1");
  EXPECT_EQ(JsonNumber(-2.5), "-2.5");
  EXPECT_EQ(JsonNumber(std::nan("")), "null");
  EXPECT_EQ(JsonNumber(1.0 / 0.0), "null");
}

TEST(JsonObjectBuilderTest, BuildsOrderedObject) {
  JsonObjectBuilder b;
  b.Add("name", "fig1");
  b.Add("nodes", 12.5);
  b.Add("count", static_cast<uint64_t>(7));
  b.Add("ok", true);
  b.AddNumberArray("levels", {1.0, 2.0});
  b.AddRaw("nested", "{\"a\":1}");
  const std::string json = b.Build();
  EXPECT_EQ(json,
            "{\"name\":\"fig1\",\"nodes\":12.5,\"count\":7,\"ok\":true,"
            "\"levels\":[1,2],\"nested\":{\"a\":1}}");
}

TEST(ParseJsonTest, ParsesScalarsArraysObjects) {
  const auto v = ParseJson(
      R"({"s":"hi","n":-1.5,"b":true,"z":null,"a":[1,2,3],"o":{"k":"v"}})");
  ASSERT_TRUE(v.has_value());
  ASSERT_TRUE(v->is_object());
  EXPECT_EQ(v->Find("s")->string_value, "hi");
  EXPECT_DOUBLE_EQ(v->Find("n")->number_value, -1.5);
  EXPECT_TRUE(v->Find("b")->bool_value);
  EXPECT_EQ(v->Find("z")->kind, JsonValue::Kind::kNull);
  ASSERT_TRUE(v->Find("a")->is_array());
  EXPECT_EQ(v->Find("a")->array_value.size(), 3u);
  EXPECT_EQ(v->Find("o")->Find("k")->string_value, "v");
  EXPECT_EQ(v->Find("missing"), nullptr);
}

TEST(ParseJsonTest, ParsesEscapes) {
  const auto v = ParseJson(R"({"s":"a\"b\\c\nd"})");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->Find("s")->string_value, "a\"b\\c\nd");
}

TEST(ParseJsonTest, RejectsMalformedInput) {
  EXPECT_FALSE(ParseJson("").has_value());
  EXPECT_FALSE(ParseJson("{").has_value());
  EXPECT_FALSE(ParseJson("{\"a\":}").has_value());
  EXPECT_FALSE(ParseJson("[1,2,]").has_value());
  EXPECT_FALSE(ParseJson("{} trailing").has_value());
  EXPECT_FALSE(ParseJson("nul").has_value());
}

TEST(JsonlWriterTest, RoundTripsThroughParser) {
  const std::string path = ::testing::TempDir() + "/obs_export_test.jsonl";
  {
    JsonlWriter writer(path);
    ASSERT_TRUE(writer.ok());
    JsonObjectBuilder rec;
    rec.Add("record", "query");
    rec.Add("nodes", static_cast<uint64_t>(12));
    rec.Add("latency_us", 3.25);
    rec.AddNumberArray("level_nodes", {1.0, 4.0, 7.0});
    writer.WriteLine(rec.Build());
    JsonObjectBuilder rec2;
    rec2.Add("record", "summary");
    rec2.Add("label", "D=10 \"quoted\"");
    writer.WriteLine(rec2.Build());
    EXPECT_EQ(writer.lines_written(), 2u);
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  auto first = ParseJson(line);
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->Find("record")->string_value, "query");
  EXPECT_DOUBLE_EQ(first->Find("nodes")->number_value, 12.0);
  EXPECT_DOUBLE_EQ(first->Find("latency_us")->number_value, 3.25);
  ASSERT_EQ(first->Find("level_nodes")->array_value.size(), 3u);
  EXPECT_DOUBLE_EQ(first->Find("level_nodes")->array_value[1].number_value,
                   4.0);
  ASSERT_TRUE(std::getline(in, line));
  auto second = ParseJson(line);
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->Find("label")->string_value, "D=10 \"quoted\"");
  EXPECT_FALSE(std::getline(in, line));
  std::remove(path.c_str());
}

TEST(CsvWriterTest, QuotesAndPadsRows) {
  const std::string path = ::testing::TempDir() + "/obs_export_test.csv";
  {
    CsvWriter writer(path, {"case", "stream", "value"});
    ASSERT_TRUE(writer.ok());
    writer.WriteRow({"D=10", "N-MCM/nodes", "1.5"});
    writer.WriteRow({"has,comma", "has\"quote"});  // Padded to 3 cells.
  }
  std::ifstream in(path);
  std::string line;
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "case,stream,value");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "D=10,N-MCM/nodes,1.5");
  ASSERT_TRUE(std::getline(in, line));
  EXPECT_EQ(line, "\"has,comma\",\"has\"\"quote\",");
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mcm
