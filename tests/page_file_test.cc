#include "mcm/storage/page_file.h"

#include <cstdio>
#include <cstring>
#include <stdexcept>
#include <string>

#include <gtest/gtest.h>

namespace mcm {
namespace {

class PageFileTest : public ::testing::TestWithParam<std::string> {
 protected:
  std::unique_ptr<PageFile> Make(size_t page_size) {
    if (GetParam() == "memory") {
      return std::make_unique<InMemoryPageFile>(page_size);
    }
    path_ = ::testing::TempDir() + "/mcm_pagefile_test.bin";
    return std::make_unique<StdioPageFile>(path_, page_size);
  }

  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }

  std::string path_;
};

TEST_P(PageFileTest, AllocateReadWriteRoundTrip) {
  auto file = Make(64);
  const PageId a = file->Allocate();
  const PageId b = file->Allocate();
  EXPECT_NE(a, b);
  std::vector<uint8_t> data(64, 0xab);
  file->WritePage(a, data.data());
  std::vector<uint8_t> other(64, 0x11);
  file->WritePage(b, other.data());

  std::vector<uint8_t> out(64, 0);
  file->ReadPage(a, out.data());
  EXPECT_EQ(out, data);
  file->ReadPage(b, out.data());
  EXPECT_EQ(out, other);
}

TEST_P(PageFileTest, FreshPagesAreZeroed) {
  auto file = Make(32);
  const PageId id = file->Allocate();
  std::vector<uint8_t> out(32, 0xff);
  file->ReadPage(id, out.data());
  EXPECT_EQ(out, std::vector<uint8_t>(32, 0));
}

TEST_P(PageFileTest, FreeListRecyclesPages) {
  auto file = Make(32);
  const PageId a = file->Allocate();
  file->Allocate();
  file->Free(a);
  const PageId c = file->Allocate();
  EXPECT_EQ(c, a);
  EXPECT_EQ(file->num_pages(), 2u);
}

TEST_P(PageFileTest, OutOfRangeAccessThrows) {
  auto file = Make(32);
  std::vector<uint8_t> buf(32, 0);
  EXPECT_THROW(file->ReadPage(0, buf.data()), std::out_of_range);
  file->Allocate();
  EXPECT_THROW(file->ReadPage(1, buf.data()), std::out_of_range);
  EXPECT_THROW(file->WritePage(5, buf.data()), std::out_of_range);
  EXPECT_THROW(file->Free(9), std::out_of_range);
}

TEST_P(PageFileTest, StatsCountOperations) {
  auto file = Make(32);
  const PageId id = file->Allocate();
  std::vector<uint8_t> buf(32, 1);
  file->WritePage(id, buf.data());
  file->ReadPage(id, buf.data());
  file->ReadPage(id, buf.data());
  EXPECT_EQ(file->stats().allocations, 1u);
  EXPECT_EQ(file->stats().writes, 1u);
  EXPECT_EQ(file->stats().reads, 2u);
  file->ResetStats();
  EXPECT_EQ(file->stats().reads, 0u);
}

TEST_P(PageFileTest, ManyPagesKeepIntegrity) {
  auto file = Make(16);
  std::vector<PageId> ids;
  for (uint8_t i = 0; i < 50; ++i) {
    const PageId id = file->Allocate();
    std::vector<uint8_t> buf(16, i);
    file->WritePage(id, buf.data());
    ids.push_back(id);
  }
  for (uint8_t i = 0; i < 50; ++i) {
    std::vector<uint8_t> buf(16, 0);
    file->ReadPage(ids[i], buf.data());
    EXPECT_EQ(buf[0], i);
    EXPECT_EQ(buf[15], i);
  }
}

INSTANTIATE_TEST_SUITE_P(Backends, PageFileTest,
                         ::testing::Values("memory", "stdio"),
                         [](const auto& info) { return info.param; });

TEST(PageFile, ZeroPageSizeRejected) {
  EXPECT_THROW(InMemoryPageFile(0), std::invalid_argument);
}

TEST(StdioPageFile, UnopenablePathThrows) {
  EXPECT_THROW(StdioPageFile("/nonexistent-dir/x/y.bin", 32),
               std::runtime_error);
}

}  // namespace
}  // namespace mcm
