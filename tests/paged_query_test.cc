// Queries through a pressure-cooked buffer pool: with only a couple of
// frames, every traversal step evicts pages mid-query; answers must stay
// exact and physical I/O must reflect the pool pressure.

#include <memory>

#include <gtest/gtest.h>

#include "mcm/baseline/linear_scan.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;

TEST(PagedQuery, TinyPoolKeepsAnswersExact) {
  MTreeOptions options;
  options.node_size_bytes = 512;
  const auto data = GenerateClustered(1200, 6, 509);
  auto store = std::make_unique<PagedNodeStore<VecTraits>>(
      std::make_unique<InMemoryPageFile>(options.node_size_bytes),
      /*pool_frames=*/2);
  auto* store_ptr = store.get();
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options,
                                         std::move(store));
  const LinearScan<VecTraits> oracle(data, LInfDistance{});
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 10, 6, 509);
  for (const auto& q : queries) {
    const auto got = tree.RangeSearch(q, 0.25);
    const auto expected = oracle.RangeSearch(q, 0.25);
    ASSERT_EQ(got.size(), expected.size());
    for (size_t i = 0; i < got.size(); ++i) {
      EXPECT_EQ(got[i].oid, expected[i].oid);
    }
    const auto knn = tree.KnnSearch(q, 5);
    const auto knn_expected = oracle.KnnSearch(q, 5);
    ASSERT_EQ(knn.size(), 5u);
    for (size_t i = 0; i < 5; ++i) {
      EXPECT_NEAR(knn[i].distance, knn_expected[i].distance, 1e-9);
    }
  }
  // Pressure was real: far more misses than the pool can hold.
  EXPECT_GT(store_ptr->pool().stats().evictions, 100u);
}

TEST(PagedQuery, PoolSizeDoesNotChangeLogicalCosts) {
  // The paper's I/O cost is the *logical* node-access count; it must be
  // identical whether the pool holds 2 frames or the whole tree.
  MTreeOptions options;
  options.node_size_bytes = 1024;
  const auto data = GenerateClustered(1500, 5, 521);

  auto small_store = std::make_unique<PagedNodeStore<VecTraits>>(
      std::make_unique<InMemoryPageFile>(options.node_size_bytes), 2);
  auto big_store = std::make_unique<PagedNodeStore<VecTraits>>(
      std::make_unique<InMemoryPageFile>(options.node_size_bytes), 4096);
  auto small_tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options,
                                               std::move(small_store));
  auto big_tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options,
                                             std::move(big_store));
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 15, 5, 521);
  for (const auto& q : queries) {
    QueryStats s_small, s_big;
    small_tree.RangeSearch(q, 0.2, &s_small);
    big_tree.RangeSearch(q, 0.2, &s_big);
    EXPECT_EQ(s_small.nodes_accessed, s_big.nodes_accessed);
    EXPECT_EQ(s_small.distance_computations, s_big.distance_computations);
  }
}

}  // namespace
}  // namespace mcm
