// Persistence tests: save/reopen round trips across object types and node
// stores, metadata validation, and continued mutation after reopening.

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/mtree/persist.h"
#include "mcm/check/check_mtree.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;
using StrTraits = StringTraits<>;

class PersistTest : public ::testing::Test {
 protected:
  std::string Path(const std::string& name) {
    const std::string path = ::testing::TempDir() + "/" + name;
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const auto& p : paths_) {
      std::remove(p.c_str());
      std::remove((p + ".meta").c_str());
    }
  }

  std::vector<std::string> paths_;
};

TEST_F(PersistTest, VectorTreeRoundTrip) {
  MTreeOptions options;
  options.node_size_bytes = 1024;
  const auto data = GenerateClustered(1200, 6, 229);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  const std::string path = Path("vec.mtree");
  SaveMTree(tree, path);

  auto reopened = OpenMTree<VecTraits>(path, LInfDistance{}, options);
  EXPECT_EQ(reopened.size(), tree.size());
  EXPECT_EQ(reopened.height(), tree.height());
  EXPECT_TRUE(check::CheckMTree(reopened).ok());

  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 15, 6, 229);
  for (const auto& q : queries) {
    QueryStats s1, s2;
    const auto r1 = tree.RangeSearch(q, 0.2, &s1);
    const auto r2 = reopened.RangeSearch(q, 0.2, &s2);
    ASSERT_EQ(r1.size(), r2.size());
    for (size_t i = 0; i < r1.size(); ++i) {
      EXPECT_EQ(r1[i].oid, r2[i].oid);
      EXPECT_DOUBLE_EQ(r1[i].distance, r2[i].distance);
    }
    EXPECT_EQ(s1.nodes_accessed, s2.nodes_accessed);
    EXPECT_EQ(s1.distance_computations, s2.distance_computations);
  }
}

TEST_F(PersistTest, StringTreeRoundTrip) {
  MTreeOptions options;
  const auto words = GenerateKeywords(2000, 233);
  auto tree = MTree<StrTraits>::BulkLoad(words, EditDistanceMetric{}, options);
  const std::string path = Path("str.mtree");
  SaveMTree(tree, path);
  auto reopened = OpenMTree<StrTraits>(path, EditDistanceMetric{}, options);
  EXPECT_EQ(reopened.size(), 2000u);
  for (const auto& q : GenerateKeywordQueries(10, 233)) {
    EXPECT_EQ(tree.RangeSearch(q, 2.0).size(),
              reopened.RangeSearch(q, 2.0).size());
  }
}

TEST_F(PersistTest, ReopenedTreeAcceptsInsertsAndDeletes) {
  MTreeOptions options;
  options.node_size_bytes = 512;
  const auto data = GenerateUniform(300, 4, 239);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  const std::string path = Path("mut.mtree");
  SaveMTree(tree, path);

  auto reopened = OpenMTree<VecTraits>(path, LInfDistance{}, options);
  reopened.Insert({0.25f, 0.25f, 0.25f, 0.25f}, 9999);
  EXPECT_EQ(reopened.size(), 301u);
  EXPECT_TRUE(reopened.Delete(data[0], 0));
  EXPECT_EQ(reopened.size(), 300u);
  EXPECT_TRUE(check::CheckMTree(reopened).ok());
  const auto r = reopened.RangeSearch({0.25f, 0.25f, 0.25f, 0.25f}, 0.0);
  ASSERT_FALSE(r.empty());
  EXPECT_EQ(r.front().oid, 9999u);
}

TEST_F(PersistTest, EmptyTreeRoundTrip) {
  MTreeOptions options;
  MTree<VecTraits> tree(LInfDistance{}, options);
  const std::string path = Path("empty.mtree");
  SaveMTree(tree, path);
  auto reopened = OpenMTree<VecTraits>(path, LInfDistance{}, options);
  EXPECT_EQ(reopened.size(), 0u);
  EXPECT_TRUE(reopened.RangeSearch({0.5f}, 1.0).empty());
}

TEST_F(PersistTest, SavedFileIsCompact) {
  // A bulk-loaded tree saved to disk occupies exactly num_nodes pages.
  MTreeOptions options;
  options.node_size_bytes = 1024;
  const auto data = GenerateClustered(800, 5, 241);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  const std::string path = Path("compact.mtree");
  SaveMTree(tree, path);
  std::FILE* f = std::fopen(path.c_str(), "rb");
  ASSERT_NE(f, nullptr);
  std::fseek(f, 0, SEEK_END);
  const long bytes = std::ftell(f);
  std::fclose(f);
  EXPECT_EQ(static_cast<size_t>(bytes),
            tree.store().NumNodes() * options.node_size_bytes);
}

TEST_F(PersistTest, NodeSizeMismatchRejected) {
  MTreeOptions options;
  options.node_size_bytes = 1024;
  const auto data = GenerateUniform(100, 3, 251);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  const std::string path = Path("mismatch.mtree");
  SaveMTree(tree, path);
  MTreeOptions wrong = options;
  wrong.node_size_bytes = 4096;
  EXPECT_THROW(OpenMTree<VecTraits>(path, LInfDistance{}, wrong),
               std::runtime_error);
}

TEST_F(PersistTest, MissingMetaRejected) {
  EXPECT_THROW(
      OpenMTree<VecTraits>(Path("nonexistent.mtree"), LInfDistance{},
                           MTreeOptions{}),
      std::runtime_error);
}

TEST_F(PersistTest, CorruptMagicRejected) {
  const std::string path = Path("corrupt.mtree");
  std::FILE* f = std::fopen((path + ".meta").c_str(), "wb");
  ASSERT_NE(f, nullptr);
  const char junk[64] = {0};
  std::fwrite(junk, sizeof(junk), 1, f);
  std::fclose(f);
  EXPECT_THROW(OpenMTree<VecTraits>(path, LInfDistance{}, MTreeOptions{}),
               std::runtime_error);
}

}  // namespace
}  // namespace mcm
