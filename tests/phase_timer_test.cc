// Phase-timer contracts: spans arm only when stats are attached AND
// observability is on; with obs off a query's answers and counters are
// bit-identical to an instrumented run while every phase total stays zero;
// with obs on the traverse span encloses the distance-eval / page-read /
// decode spans it triggers (the nesting the Chrome-trace exporter relies
// on); and ObservePhaseTimes feeds the per-phase registry histograms with
// the query id as exemplar.

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/mtree.h"
#include "mcm/obs/metrics.h"
#include "mcm/obs/phase.h"

namespace mcm {
namespace {

using Traits = VectorTraits<L2Distance>;

/// Restores the cached MCM_OBS flag on scope exit so tests cannot leak
/// their override into each other.
class ObsGuard {
 public:
  explicit ObsGuard(bool enabled) : previous_(ObsEnabled()) {
    SetObsEnabledForTesting(enabled);
  }
  ~ObsGuard() { SetObsEnabledForTesting(previous_); }

 private:
  bool previous_;
};

/// Busy work so a surrounding span covers a measurably nonzero interval
/// even on coarse clocks.
void Spin() {
  volatile uint64_t sink = 0;
  for (uint64_t i = 0; i < 10'000; ++i) sink += i;
}

MTree<Traits> BuildTree(size_t n = 400) {
  MTreeOptions options;
  options.node_size_bytes = 512;
  MTree<Traits> tree{L2Distance{}, options};
  const auto data =
      GenerateVectorDataset(VectorDatasetKind::kClustered, n, 4, 7);
  for (size_t i = 0; i < data.size(); ++i) tree.Insert(data[i], i);
  return tree;
}

TEST(ScopedSpan, ArmsOnlyWithStatsAndObsOn) {
  QueryStats stats;
  {
    ObsGuard obs(true);
    ScopedSpan with_stats(&stats, QueryPhase::kTraverse);
    EXPECT_TRUE(with_stats.armed());
    Spin();
    ScopedSpan without_stats(nullptr, QueryPhase::kTraverse);
    EXPECT_FALSE(without_stats.armed());
  }
  {
    ObsGuard obs(false);
    ScopedSpan span(&stats, QueryPhase::kTraverse);
    EXPECT_FALSE(span.armed());
  }
  EXPECT_GT(stats.PhaseNs(QueryPhase::kTraverse), 0u);  // The armed span.
}

TEST(ScopedSpan, AppendsToAttachedLog) {
  ObsGuard obs(true);
  PhaseSpanLog log;
  QueryStats stats;
  stats.spans = &log;
  { ScopedSpan span(&stats, QueryPhase::kDecode); }
  { ScopedSpan span(&stats, QueryPhase::kCollect); }
  ASSERT_EQ(log.spans().size(), 2u);
  EXPECT_EQ(log.spans()[0].phase, QueryPhase::kDecode);
  EXPECT_EQ(log.spans()[1].phase, QueryPhase::kCollect);
  EXPECT_LE(log.spans()[0].start_ns, log.spans()[0].end_ns);
  EXPECT_EQ(stats.TotalPhaseNs(),
            stats.PhaseNs(QueryPhase::kDecode) +
                stats.PhaseNs(QueryPhase::kCollect));
}

TEST(PhaseSpanLog, DropsPastCapacity) {
  ObsGuard obs(true);
  PhaseSpanLog log(2);
  QueryStats stats;
  stats.spans = &log;
  for (int i = 0; i < 5; ++i) {
    ScopedSpan span(&stats, QueryPhase::kTraverse);
  }
  EXPECT_EQ(log.spans().size(), 2u);
  EXPECT_EQ(log.dropped(), 3u);
  log.Clear();
  EXPECT_TRUE(log.spans().empty());
  EXPECT_EQ(log.dropped(), 0u);
}

TEST(PhaseTimer, ManualStartStop) {
  ObsGuard obs(true);
  QueryStats stats;
  PhaseTimer timer(&stats);
  timer.Start(QueryPhase::kPlan);
  Spin();
  timer.Stop();
  timer.Stop();  // Idempotent.
  EXPECT_GT(stats.PhaseNs(QueryPhase::kPlan), 0u);
  EXPECT_EQ(stats.PhaseNs(QueryPhase::kTraverse), 0u);
}

TEST(QueryStats, MergeAndResetKeepPhaseState) {
  QueryStats a;
  QueryStats b;
  a.phase_ns[static_cast<size_t>(QueryPhase::kTraverse)] = 10;
  b.phase_ns[static_cast<size_t>(QueryPhase::kTraverse)] = 5;
  b.phase_ns[static_cast<size_t>(QueryPhase::kDecode)] = 3;
  a += b;
  EXPECT_EQ(a.PhaseNs(QueryPhase::kTraverse), 15u);
  EXPECT_EQ(a.PhaseNs(QueryPhase::kDecode), 3u);

  PhaseSpanLog log;
  a.spans = &log;
  ResetCounters(&a);
  EXPECT_EQ(a.TotalPhaseNs(), 0u);
  EXPECT_EQ(a.spans, &log);  // Attachment survives the reset.
}

TEST(PhaseTimers, ObsOffIsBitIdentical) {
  const auto tree = BuildTree();
  const auto queries =
      GenerateVectorDataset(VectorDatasetKind::kClustered, 20, 4, 11);

  std::vector<QueryStats> off_stats;
  std::vector<size_t> off_results;
  {
    ObsGuard obs(false);
    for (const auto& q : queries) {
      QueryStats st;
      off_results.push_back(tree.RangeSearch(q, 0.4, &st).size());
      EXPECT_EQ(st.TotalPhaseNs(), 0u);  // Timers never fired.
      off_stats.push_back(st);
    }
  }
  {
    ObsGuard obs(true);
    for (size_t i = 0; i < queries.size(); ++i) {
      QueryStats st;
      const auto results = tree.RangeSearch(queries[i], 0.4, &st);
      EXPECT_EQ(results.size(), off_results[i]);
      EXPECT_EQ(st.nodes_accessed, off_stats[i].nodes_accessed);
      EXPECT_EQ(st.distance_computations,
                off_stats[i].distance_computations);
      EXPECT_EQ(st.nodes_pruned, off_stats[i].nodes_pruned);
      EXPECT_GT(st.PhaseNs(QueryPhase::kTraverse), 0u);
    }
  }
}

TEST(PhaseTimers, TraverseEnclosesInnerPhases) {
  ObsGuard obs(true);
  const auto tree = BuildTree();
  PhaseSpanLog log;
  QueryStats stats;
  stats.spans = &log;
  const auto results = tree.KnnSearch(
      GenerateVectorDataset(VectorDatasetKind::kClustered, 1, 4, 13)[0], 5,
      &stats);
  ASSERT_EQ(results.size(), 5u);
  ASSERT_FALSE(log.spans().empty());

  // Exactly one traverse span (single-threaded query), recorded last
  // because ScopedSpan logs on destruction.
  std::vector<PhaseSpan> traverse;
  for (const auto& s : log.spans()) {
    if (s.phase == QueryPhase::kTraverse) traverse.push_back(s);
  }
  ASSERT_EQ(traverse.size(), 1u);
  size_t inner = 0;
  for (const auto& s : log.spans()) {
    if (s.phase == QueryPhase::kTraverse || s.phase == QueryPhase::kCollect) {
      continue;
    }
    ++inner;
    EXPECT_GE(s.start_ns, traverse[0].start_ns);
    EXPECT_LE(s.end_ns, traverse[0].end_ns);
    EXPECT_EQ(s.lane, traverse[0].lane);
  }
  EXPECT_GT(inner, 0u);  // At least the distance-eval spans.

  // The traverse total consequently dominates each inner phase, and the
  // grand total exceeds the wall-clock of the traverse alone (nesting).
  EXPECT_GE(stats.PhaseNs(QueryPhase::kTraverse),
            stats.PhaseNs(QueryPhase::kDistanceEval));
}

TEST(ObservePhaseTimes, FeedsRegistryHistogramsWithExemplar) {
  ObsGuard obs(true);
  MetricsRegistry::Global().Clear();
  QueryStats stats;
  stats.phase_ns[static_cast<size_t>(QueryPhase::kTraverse)] = 42'000;
  ObservePhaseTimes(stats, /*query_id=*/7);

  auto& hist = MetricsRegistry::Global().GetHistogram(
      PhaseHistogramName(QueryPhase::kTraverse), DefaultLatencyBoundsUs());
  EXPECT_EQ(hist.Count(), 1u);
  EXPECT_DOUBLE_EQ(hist.Sum(), 42.0);  // Microseconds.
  double value = 0.0;
  uint64_t query_id = 0;
  ASSERT_TRUE(hist.LastExemplar(&value, &query_id));
  EXPECT_EQ(query_id, 7u);

  // Zero phases are skipped: no decode histogram appears.
  auto& decode = MetricsRegistry::Global().GetHistogram(
      PhaseHistogramName(QueryPhase::kDecode), DefaultLatencyBoundsUs());
  EXPECT_EQ(decode.Count(), 0u);
  MetricsRegistry::Global().Clear();
}

}  // namespace
}  // namespace mcm
