#include "mcm/obs/trace.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "mcm/common/query_stats.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/gnat/gnat.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/vptree/vptree.h"

namespace mcm {
namespace {

using Traits = VectorTraits<LInfDistance>;

TEST(QueryTraceTest, RecordsEventsAndTallies) {
  QueryTrace trace;
  trace.RecordVisit(/*node=*/1, /*level=*/1, /*entries_scanned=*/4,
                    /*entries_pruned=*/0, /*distances=*/4);
  trace.RecordPrune(/*node=*/7, /*level=*/2, PruneReason::kCoveringRadius);
  trace.RecordVisit(2, 2, 10, 3, 10);
  trace.RecordBufferFetch(/*node=*/2, /*hit=*/true);
  trace.RecordBufferFetch(/*node=*/3, /*hit=*/false);

  EXPECT_EQ(trace.total_visits(), 2u);
  EXPECT_EQ(trace.total_prunes(), 1u);
  EXPECT_EQ(trace.buffer_hits(), 1u);
  EXPECT_EQ(trace.buffer_misses(), 1u);
  EXPECT_EQ(
      trace.prunes_by_reason()[static_cast<size_t>(
          PruneReason::kCoveringRadius)],
      1u);

  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 5u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kNodeVisit);
  EXPECT_EQ(events[0].node, 1u);
  EXPECT_EQ(events[1].kind, TraceEventKind::kPrune);
  EXPECT_EQ(events[1].reason, PruneReason::kCoveringRadius);
  EXPECT_EQ(events[4].kind, TraceEventKind::kBufferFetch);
  EXPECT_FALSE(events[4].buffer_hit);

  ASSERT_EQ(trace.levels().size(), 2u);
  EXPECT_EQ(trace.levels()[0].node_visits, 1u);
  EXPECT_EQ(trace.levels()[1].node_visits, 1u);
  EXPECT_EQ(trace.levels()[1].entries_pruned, 3u);
  EXPECT_EQ(trace.levels()[1].subtree_prunes, 1u);

  const auto per_level = trace.LevelNodeVisits();
  ASSERT_EQ(per_level.size(), 2u);
  EXPECT_DOUBLE_EQ(per_level[0], 1.0);
  EXPECT_DOUBLE_EQ(per_level[1], 1.0);
}

TEST(QueryTraceTest, RingOverflowKeepsNewestAndExactTallies) {
  QueryTrace trace(/*capacity=*/4);
  for (uint64_t i = 0; i < 10; ++i) {
    trace.RecordVisit(i, /*level=*/1, 1, 0, 1);
  }
  EXPECT_EQ(trace.size(), 4u);
  EXPECT_EQ(trace.dropped(), 6u);
  EXPECT_EQ(trace.total_visits(), 10u);  // Aggregates survive overflow.
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 4u);
  // Oldest first, and only the newest four nodes (6, 7, 8, 9) remain.
  EXPECT_EQ(events[0].node, 6u);
  EXPECT_EQ(events[3].node, 9u);
}

TEST(QueryTraceTest, ClearResetsEverything) {
  QueryTrace trace(4);
  trace.RecordVisit(1, 1, 1, 0, 1);
  trace.RecordPrune(2, 2, PruneReason::kShellBound);
  trace.Clear();
  EXPECT_EQ(trace.size(), 0u);
  EXPECT_EQ(trace.dropped(), 0u);
  EXPECT_EQ(trace.total_visits(), 0u);
  EXPECT_EQ(trace.total_prunes(), 0u);
  EXPECT_TRUE(trace.levels().empty());
  EXPECT_TRUE(trace.Events().empty());
}

TEST(QueryTraceTest, ToStringCoversAllReasons) {
  for (size_t i = 0; i < kNumPruneReasons; ++i) {
    EXPECT_NE(std::string(ToString(static_cast<PruneReason>(i))), "");
  }
}

TEST(QueryTraceMTreeTest, RangeQueryEmitsVisitsAndCoveringRadiusPrunes) {
  const auto data = GenerateClustered(400, 5, /*seed=*/42);
  MTreeOptions options;
  options.seed = 42;
  auto tree = MTree<Traits>::BulkLoad(data, LInfDistance{}, options);
  ASSERT_GT(tree.height(), 1u);  // Need routing nodes for subtree prunes.

  QueryTrace trace;
  QueryStats stats;
  stats.trace = &trace;
  const auto results = tree.RangeSearch(data[0], 0.05, &stats);
  ASSERT_FALSE(results.empty());  // The query object itself.

  // Every accessed node produced exactly one visit event.
  EXPECT_EQ(trace.total_visits(), stats.nodes_accessed);
  // Subtree prunes agree between the trace and the QueryStats counter.
  EXPECT_EQ(trace.total_prunes(), stats.nodes_pruned);
  // A selective query on a multi-level tree must prune something, and on
  // the basic pruning mode only the covering-radius test fires for
  // subtrees (the parent filter prunes leaf *entries*).
  EXPECT_GT(stats.nodes_pruned, 0u);
  const auto& by_reason = trace.prunes_by_reason();
  uint64_t subtree_prunes =
      by_reason[static_cast<size_t>(PruneReason::kCoveringRadius)] +
      by_reason[static_cast<size_t>(PruneReason::kParentFilter)];
  EXPECT_EQ(subtree_prunes, stats.nodes_pruned);

  // Per-level visit totals sum to the node count, and level 1 (the root)
  // was visited exactly once.
  const auto per_level = trace.LevelNodeVisits();
  ASSERT_FALSE(per_level.empty());
  EXPECT_DOUBLE_EQ(per_level[0], 1.0);
  double total = 0;
  for (double v : per_level) total += v;
  EXPECT_DOUBLE_EQ(total, static_cast<double>(stats.nodes_accessed));
}

TEST(QueryTraceMTreeTest, TinyTreeHandChecked) {
  // 8 objects in a 16-entry node: the tree is a single root leaf. The only
  // event must be one visit of level 1 scanning all 8 entries, no prunes.
  std::vector<FloatVector> data;
  for (int i = 0; i < 8; ++i) {
    data.push_back(FloatVector{static_cast<float>(i) / 8.0f, 0.0f});
  }
  MTreeOptions options;
  options.seed = 42;
  auto tree = MTree<Traits>::BulkLoad(data, LInfDistance{}, options);
  ASSERT_EQ(tree.height(), 1u);

  QueryTrace trace;
  QueryStats stats;
  stats.trace = &trace;
  tree.RangeSearch(data[0], 10.0, &stats);
  EXPECT_EQ(stats.nodes_accessed, 1u);
  EXPECT_EQ(stats.nodes_pruned, 0u);
  const auto events = trace.Events();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].kind, TraceEventKind::kNodeVisit);
  EXPECT_EQ(events[0].level, 1u);
  EXPECT_EQ(events[0].entries_scanned, 8u);
  EXPECT_EQ(events[0].entries_pruned, 0u);
}

TEST(QueryTraceMTreeTest, KnnRecordsKnnBoundPrunes) {
  const auto data = GenerateClustered(400, 5, 42);
  MTreeOptions options;
  options.seed = 42;
  auto tree = MTree<Traits>::BulkLoad(data, LInfDistance{}, options);
  QueryTrace trace;
  QueryStats stats;
  stats.trace = &trace;
  const auto results = tree.KnnSearch(data[0], 3, &stats);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_EQ(trace.total_visits(), stats.nodes_accessed);
  EXPECT_EQ(trace.total_prunes(), stats.nodes_pruned);
  // k-NN on clustered data terminates before draining the frontier.
  EXPECT_GT(trace.prunes_by_reason()[static_cast<size_t>(
                PruneReason::kKnnBound)],
            0u);
}

TEST(QueryTraceMTreeTest, ParentFilterPrunesInOptimizedMode) {
  const auto data = GenerateClustered(400, 5, 42);
  MTreeOptions options;
  options.seed = 42;
  options.pruning = PruningMode::kOptimized;
  auto tree = MTree<Traits>::BulkLoad(data, LInfDistance{}, options);
  QueryTrace trace;
  QueryStats stats;
  stats.trace = &trace;
  tree.RangeSearch(data[0], 0.05, &stats);
  EXPECT_EQ(trace.total_prunes(), stats.nodes_pruned);
  // In optimized mode leaf entries skipped by the parent filter show up as
  // entries_pruned in visit events; distances equal entries actually
  // computed, so scanned >= distances recorded per level.
  uint64_t entries_pruned = 0;
  for (const auto& tally : trace.levels()) {
    entries_pruned += tally.entries_pruned;
  }
  EXPECT_GT(entries_pruned, 0u);
}

TEST(QueryTraceVpTreeTest, ShellBoundPrunesAndStatsPopulated) {
  const auto data = GenerateClustered(500, 5, 42);
  VpTreeOptions options;
  options.seed = 42;
  // Pin the witness cascade off: this test asserts the pure shell-bound
  // attribution (witness-tightened pushes report PruneReason::kWitness).
  options.witness_capacity = 0;
  const VpTree<Traits> tree(data, LInfDistance{}, options);
  QueryTrace trace;
  QueryStats stats;
  stats.trace = &trace;
  const auto results = tree.RangeSearch(data[0], 0.05, &stats);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(trace.total_visits(), stats.nodes_accessed);
  EXPECT_EQ(trace.total_prunes(), stats.nodes_pruned);
  EXPECT_GT(stats.nodes_pruned, 0u);
  EXPECT_EQ(trace.prunes_by_reason()[static_cast<size_t>(
                PruneReason::kShellBound)],
            stats.nodes_pruned);
}

TEST(QueryTraceGnatTest, RangeTablePrunesAndStatsPopulated) {
  const auto data = GenerateClustered(500, 5, 42);
  GnatOptions options;
  options.seed = 42;
  const Gnat<Traits> tree(data, LInfDistance{}, options);
  QueryTrace trace;
  QueryStats stats;
  stats.trace = &trace;
  const auto results = tree.RangeSearch(data[0], 0.05, &stats);
  ASSERT_FALSE(results.empty());
  EXPECT_EQ(trace.total_visits(), stats.nodes_accessed);
  EXPECT_EQ(trace.total_prunes(), stats.nodes_pruned);
  EXPECT_GT(stats.nodes_pruned, 0u);
  EXPECT_EQ(trace.prunes_by_reason()[static_cast<size_t>(
                PruneReason::kRangeTable)],
            stats.nodes_pruned);
}

TEST(QueryStatsTest, ResetCountersPreservesTrace) {
  QueryTrace trace;
  QueryStats stats;
  stats.nodes_accessed = 5;
  stats.trace = &trace;
  ResetCounters(&stats);
  EXPECT_EQ(stats.nodes_accessed, 0u);
  EXPECT_EQ(stats.trace, &trace);
}

TEST(QueryStatsTest, PlusEqualsSumsNewCounters) {
  QueryStats a, b;
  a.nodes_pruned = 2;
  a.buffer_hits = 3;
  a.buffer_misses = 1;
  b.nodes_pruned = 5;
  b.buffer_hits = 7;
  b.buffer_misses = 2;
  a += b;
  EXPECT_EQ(a.nodes_pruned, 7u);
  EXPECT_EQ(a.buffer_hits, 10u);
  EXPECT_EQ(a.buffer_misses, 3u);
}

}  // namespace
}  // namespace mcm
