#include "mcm/common/random.h"

#include <set>

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(DeriveSeed, DeterministicAndStreamSensitive) {
  EXPECT_EQ(DeriveSeed(1, 0), DeriveSeed(1, 0));
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(1, 1));
  EXPECT_NE(DeriveSeed(1, 0), DeriveSeed(2, 0));
}

TEST(DeriveSeed, AdjacentSeedsDecorrelate) {
  // Adjacent base seeds should differ in roughly half their bits.
  const uint64_t a = DeriveSeed(100, 0);
  const uint64_t b = DeriveSeed(101, 0);
  const int bits = __builtin_popcountll(a ^ b);
  EXPECT_GT(bits, 16);
  EXPECT_LT(bits, 48);
}

TEST(MakeEngine, ReproducibleSequences) {
  RandomEngine a = MakeEngine(7, 3);
  RandomEngine b = MakeEngine(7, 3);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a(), b());
  }
}

TEST(UniformUnit, StaysInHalfOpenInterval) {
  RandomEngine rng = MakeEngine(11);
  for (int i = 0; i < 1000; ++i) {
    const double v = UniformUnit(rng);
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(UniformIndex, CoversFullRange) {
  RandomEngine rng = MakeEngine(13);
  std::set<size_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const size_t v = UniformIndex(rng, 5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

}  // namespace
}  // namespace mcm
