// Readahead tests: prefetching contiguous child runs must change only the
// physical read pattern and the buffer hit/miss split — never answers,
// logical node accesses, or distance counts — and the prefetch counters
// must stay consistent (used + wasted <= issued).

#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/storage/io_stats.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;

struct BuiltTree {
  MTree<VecTraits> tree;
  PagedNodeStore<VecTraits>* store;  // Owned by the tree.
};

BuiltTree Build(const std::vector<FloatVector>& data, int64_t readahead,
                size_t pool_frames) {
  MTreeOptions options;
  options.node_size_bytes = 1024;
  auto store = std::make_unique<PagedNodeStore<VecTraits>>(
      std::make_unique<InMemoryPageFile>(options.node_size_bytes),
      pool_frames, /*cache_entries=*/0, readahead);
  auto* paged = store.get();
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options,
                                         std::move(store));
  return {std::move(tree), paged};
}

TEST(Readahead, AnswersAndLogicalCountersUnchanged) {
  const auto data = GenerateClustered(8000, 8, 113);
  auto off = Build(data, /*readahead=*/0, /*pool_frames=*/64);
  auto on = Build(data, /*readahead=*/16, /*pool_frames=*/64);

  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 30, 8, 113);
  for (const auto& q : queries) {
    off.store->pool().EvictAll();
    on.store->pool().EvictAll();
    QueryStats so, sn;
    const auto ro = off.tree.RangeSearch(q, 0.15, &so);
    const auto rn = on.tree.RangeSearch(q, 0.15, &sn);
    ASSERT_EQ(ro.size(), rn.size());
    for (size_t i = 0; i < ro.size(); ++i) {
      EXPECT_EQ(ro[i].oid, rn[i].oid);
      EXPECT_DOUBLE_EQ(ro[i].distance, rn[i].distance);
    }
    // The same tree bytes are traversed: logical costs are identical.
    EXPECT_EQ(so.nodes_accessed, sn.nodes_accessed);
    EXPECT_EQ(so.distance_computations, sn.distance_computations);
    EXPECT_EQ(so.nodes_pruned, sn.nodes_pruned);
    // Readahead converts misses into hits; the fetch total is preserved.
    EXPECT_EQ(so.buffer_hits + so.buffer_misses,
              sn.buffer_hits + sn.buffer_misses);
  }
}

TEST(Readahead, PrefetchCountersConsistentAndEffective) {
  const auto data = GenerateClustered(8000, 8, 127);
  auto off = Build(data, /*readahead=*/0, /*pool_frames=*/64);
  auto on = Build(data, /*readahead=*/16, /*pool_frames=*/64);

  const auto before_off = CaptureIoStats(off.store->pool());
  const auto before_on = CaptureIoStats(on.store->pool());
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 30, 8, 127);
  for (const auto& q : queries) {
    off.store->pool().EvictAll();
    on.store->pool().EvictAll();
    off.tree.RangeSearch(q, 0.15);
    on.tree.RangeSearch(q, 0.15);
  }
  const auto delta_off = CaptureIoStats(off.store->pool()) - before_off;
  const auto delta_on = CaptureIoStats(on.store->pool()) - before_on;

  // Off: the knob really is off.
  EXPECT_EQ(delta_off.pool.prefetch_issued, 0u);
  // On: prefetches were issued and mostly consumed.
  EXPECT_GT(delta_on.pool.prefetch_issued, 0u);
  EXPECT_GT(delta_on.pool.prefetch_used, 0u);
  EXPECT_LE(delta_on.pool.prefetch_used + delta_on.pool.prefetch_wasted,
            delta_on.pool.prefetch_issued);
  // The physical pattern is the point: batching contiguous child runs must
  // strictly reduce read *operations*, while pages transferred stay equal
  // to (demand pages) + (wasted prefetches) >= the demand-only run.
  EXPECT_LT(delta_on.file.reads, delta_off.file.reads);
  EXPECT_GE(delta_on.file.read_pages, delta_off.file.read_pages);
}

TEST(Readahead, SingleSurvivorIsNotPrefetched) {
  // A k-NN with k=1 on a tiny tree mostly visits single survivors; the
  // store must never issue 1-page "runs" (they would just relabel demand
  // misses). With a root-only tree there is nothing to prefetch at all.
  const auto data = GenerateClustered(30, 4, 131);
  auto built = Build(data, /*readahead=*/16, /*pool_frames=*/64);
  const auto before = CaptureIoStats(built.store->pool());
  built.tree.KnnSearch(data[0], 1);
  const auto delta = CaptureIoStats(built.store->pool()) - before;
  EXPECT_EQ(delta.pool.prefetch_issued, 0u);
}

TEST(Readahead, KnnAnswersUnchanged) {
  const auto data = GenerateClustered(6000, 8, 137);
  auto off = Build(data, /*readahead=*/0, /*pool_frames=*/64);
  auto on = Build(data, /*readahead=*/16, /*pool_frames=*/64);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 20, 8, 137);
  for (const auto& q : queries) {
    off.store->pool().EvictAll();
    on.store->pool().EvictAll();
    QueryStats so, sn;
    const auto ro = off.tree.KnnSearch(q, 10, &so);
    const auto rn = on.tree.KnnSearch(q, 10, &sn);
    ASSERT_EQ(ro.size(), rn.size());
    for (size_t i = 0; i < ro.size(); ++i) {
      EXPECT_EQ(ro[i].oid, rn[i].oid);
    }
    EXPECT_EQ(so.nodes_accessed, sn.nodes_accessed);
    EXPECT_EQ(so.distance_computations, sn.distance_computations);
  }
}

}  // namespace
}  // namespace mcm
