#include "mcm/obs/residual.h"

#include <gtest/gtest.h>

#include <cmath>

namespace mcm {
namespace {

TEST(ResidualStreamTest, ExactStatsOnKnownSamples) {
  ResidualStream stream;
  stream.Add(/*predicted=*/110.0, /*actual=*/100.0);  // +10% error.
  stream.Add(/*predicted=*/80.0, /*actual=*/100.0);   // -20% error.
  const auto stats = stream.Stats();
  EXPECT_EQ(stats.count, 2u);
  EXPECT_NEAR(stats.mean_rel_err, (0.1 + 0.2) / 2.0, 1e-12);
  // Signed bias: (+0.1 - 0.2) / 2 = -0.05 (net underestimate).
  EXPECT_NEAR(stats.mean_signed, -0.05, 1e-12);
  EXPECT_NEAR(stats.mean_predicted, 95.0, 1e-12);
  EXPECT_NEAR(stats.mean_actual, 100.0, 1e-12);
}

TEST(ResidualStreamTest, QuantilesOnSpreadSamples) {
  ResidualStream stream;
  // Relative errors 1%, 2%, ..., 100%.
  for (int i = 1; i <= 100; ++i) {
    stream.Add(100.0 + static_cast<double>(i), 100.0);
  }
  const auto stats = stream.Stats();
  EXPECT_EQ(stats.count, 100u);
  EXPECT_NEAR(stats.p50_rel_err, 0.50, 0.02);
  EXPECT_NEAR(stats.p95_rel_err, 0.95, 0.02);
  EXPECT_GE(stats.p95_rel_err, stats.p50_rel_err);
}

TEST(ResidualStreamTest, ZeroActualFallsBackToAbsoluteError) {
  ResidualStream stream;
  stream.Add(3.0, 0.0);
  const auto stats = stream.Stats();
  EXPECT_EQ(stats.count, 1u);
  // RelativeError falls back to |pred - actual| when actual == 0.
  EXPECT_NEAR(stats.mean_rel_err, 3.0, 1e-12);
  EXPECT_TRUE(std::isfinite(stats.mean_signed));
}

TEST(ResidualStreamTest, PerfectPredictionsHaveZeroError) {
  ResidualStream stream;
  for (int i = 1; i <= 10; ++i) {
    stream.Add(static_cast<double>(i), static_cast<double>(i));
  }
  const auto stats = stream.Stats();
  EXPECT_DOUBLE_EQ(stats.mean_rel_err, 0.0);
  EXPECT_DOUBLE_EQ(stats.p50_rel_err, 0.0);
  EXPECT_DOUBLE_EQ(stats.p95_rel_err, 0.0);
  EXPECT_DOUBLE_EQ(stats.mean_signed, 0.0);
}

TEST(ResidualTrackerTest, StreamsAreKeyedAndSorted) {
  ResidualTracker tracker;
  tracker.Stream("N-MCM/nodes").Add(10.0, 11.0);
  tracker.Stream("L-MCM/nodes").Add(10.0, 12.0);
  tracker.Stream("N-MCM/dists").Add(100.0, 90.0);
  const auto names = tracker.Names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "L-MCM/nodes");  // Sorted.
  EXPECT_EQ(names[1], "N-MCM/dists");
  EXPECT_EQ(names[2], "N-MCM/nodes");
  EXPECT_EQ(tracker.StatsFor("N-MCM/nodes").count, 1u);
  EXPECT_EQ(tracker.StatsFor("missing").count, 0u);
  tracker.Clear();
  EXPECT_TRUE(tracker.empty());
}

TEST(ResidualTrackerTest, LevelSamplesFeedPerLevelStreams) {
  ResidualTracker tracker;
  // Level 1: perfect. Level 2: 50% under. Level 3 exists only in actual.
  tracker.AddLevelSamples("N-MCM", /*predicted=*/{1.0, 2.0},
                          /*actual=*/{1.0, 4.0, 8.0});
  const auto names = tracker.Names();
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "N-MCM/level1/nodes");
  EXPECT_EQ(names[1], "N-MCM/level2/nodes");
  EXPECT_EQ(names[2], "N-MCM/level3/nodes");
  EXPECT_NEAR(tracker.StatsFor("N-MCM/level1/nodes").mean_rel_err, 0.0,
              1e-12);
  EXPECT_NEAR(tracker.StatsFor("N-MCM/level2/nodes").mean_rel_err, 0.5,
              1e-12);
  // Missing predicted side = 0 predicted vs 8 actual: 100% relative error.
  EXPECT_NEAR(tracker.StatsFor("N-MCM/level3/nodes").mean_rel_err, 1.0,
              1e-12);
}

}  // namespace
}  // namespace mcm
