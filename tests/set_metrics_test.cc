#include "mcm/metric/set_metrics.h"

#include <gtest/gtest.h>

#include "mcm/common/random.h"
#include "mcm/dataset/shape_datasets.h"
#include "mcm/metric/bytes.h"

namespace mcm {
namespace {

TEST(DirectedHausdorff, KnownValues) {
  const PointSet a = {{0, 0}, {1, 0}};
  const PointSet b = {{0, 0}};
  EXPECT_DOUBLE_EQ(DirectedHausdorff(a, b), 1.0);  // (1,0) is 1 from (0,0).
  EXPECT_DOUBLE_EQ(DirectedHausdorff(b, a), 0.0);  // (0,0) is in a.
}

TEST(HausdorffDistance, SymmetricMaxOfDirected) {
  const PointSet a = {{0, 0}, {1, 0}};
  const PointSet b = {{0, 0}};
  EXPECT_DOUBLE_EQ(HausdorffDistance(a, b), 1.0);
  EXPECT_DOUBLE_EQ(HausdorffDistance(b, a), 1.0);
  EXPECT_DOUBLE_EQ(HausdorffDistance(a, a), 0.0);
}

TEST(HausdorffDistance, TranslationShiftsDistance) {
  const PointSet square = {{0, 0}, {0, 1}, {1, 0}, {1, 1}};
  PointSet shifted;
  for (const auto& p : square) shifted.push_back({p[0] + 0.5f, p[1]});
  EXPECT_DOUBLE_EQ(HausdorffDistance(square, shifted), 0.5);
}

TEST(HausdorffDistance, EmptySetRejected) {
  EXPECT_THROW(HausdorffDistance({}, {{0, 0}}), std::invalid_argument);
  EXPECT_THROW(HausdorffDistance({{0, 0}}, {}), std::invalid_argument);
}

TEST(HausdorffDistance, MetricAxiomsOnRandomShapes) {
  const auto shapes = GenerateShapes(25, 349);
  const HausdorffMetric metric;
  for (size_t i = 0; i < shapes.size(); ++i) {
    for (size_t j = 0; j < shapes.size(); j += 3) {
      const double dij = metric(shapes[i], shapes[j]);
      EXPECT_GE(dij, 0.0);
      EXPECT_NEAR(dij, metric(shapes[j], shapes[i]), 1e-12);
      if (i == j) EXPECT_DOUBLE_EQ(dij, 0.0);
      const size_t k = (i + j + 1) % shapes.size();
      EXPECT_LE(dij, metric(shapes[i], shapes[k]) +
                         metric(shapes[k], shapes[j]) + 1e-9);
    }
  }
}

TEST(JaccardDistance, KnownValues) {
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 2, 3}, {2, 3, 4}), 0.5);
  EXPECT_DOUBLE_EQ(JaccardDistance({1, 2}, {1, 2}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({1}, {2}), 1.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({}, {}), 0.0);
  EXPECT_DOUBLE_EQ(JaccardDistance({}, {5}), 1.0);
}

TEST(JaccardDistance, UnsortedRejected) {
  EXPECT_THROW(JaccardDistance({2, 1}, {1, 2}), std::invalid_argument);
}

TEST(JaccardDistance, TriangleInequalityOnRandomSets) {
  RandomEngine rng = MakeEngine(353);
  auto random_set = [&]() {
    std::vector<uint64_t> s;
    for (uint64_t v = 0; v < 30; ++v) {
      if (UniformUnit(rng) < 0.4) s.push_back(v);
    }
    return s;
  };
  const JaccardMetric metric;
  for (int trial = 0; trial < 50; ++trial) {
    const auto a = random_set(), b = random_set(), c = random_set();
    EXPECT_LE(metric(a, b), metric(a, c) + metric(c, b) + 1e-12);
  }
}

TEST(PointSetTraits, SerializationRoundTrip) {
  const PointSet shape = {{0.1f, 0.2f}, {0.3f, 0.4f}, {0.5f, 0.6f}};
  std::vector<uint8_t> buf;
  ByteWriter w(&buf);
  PointSetTraits::Serialize(shape, w);
  EXPECT_EQ(buf.size(), PointSetTraits::SerializedSize(shape));
  ByteReader r(buf.data(), buf.size());
  const PointSet parsed = PointSetTraits::Deserialize(r);
  EXPECT_EQ(parsed, shape);
}

TEST(GenerateShapes, DeterministicAndWellFormed) {
  ShapeSpec spec;
  const auto shapes = GenerateShapes(100, 359, spec);
  EXPECT_EQ(shapes.size(), 100u);
  for (const auto& s : shapes) {
    EXPECT_EQ(s.size(), spec.points_per_shape);
    for (const auto& p : s) {
      ASSERT_EQ(p.size(), 2u);
      EXPECT_GE(p[0], 0.0f);
      EXPECT_LE(p[0], 1.0f);
    }
  }
  EXPECT_EQ(shapes, GenerateShapes(100, 359, spec));
}

TEST(GenerateShapes, SameFamilyShapesAreClose) {
  // With 2 families, pairwise Hausdorff distances are bimodal.
  ShapeSpec spec;
  spec.num_families = 2;
  const auto shapes = GenerateShapes(60, 367, spec);
  const HausdorffMetric metric;
  size_t close = 0, far = 0;
  for (size_t i = 0; i < shapes.size(); i += 2) {
    for (size_t j = i + 1; j < shapes.size(); j += 3) {
      const double d = metric(shapes[i], shapes[j]);
      if (d < 0.1) ++close;
      if (d > 0.1) ++far;
    }
  }
  EXPECT_GT(close, 0u);
  EXPECT_GT(far, 0u);
}

}  // namespace
}  // namespace mcm
