#include "mcm/cost/shape_estimator.h"

#include <gtest/gtest.h>

#include "mcm/cost/lmcm.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;

DistanceHistogram SmoothHistogram() {
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) {
    samples.push_back(std::sqrt(static_cast<double>(i) / 1000.0));
  }
  return DistanceHistogram(samples, 100, 1.0);
}

ShapeEstimatorOptions VecOptions(size_t dim, size_t node_size = 4096) {
  ShapeEstimatorOptions o;
  o.node_size_bytes = node_size;
  o.node_header_bytes = MTreeNode<VecTraits>::HeaderSize();
  const FloatVector probe(dim, 0.0f);
  o.leaf_entry_bytes = MTreeNode<VecTraits>::LeafEntrySize(probe);
  o.routing_entry_bytes = MTreeNode<VecTraits>::RoutingEntrySize(probe);
  return o;
}

TEST(EstimateTreeShape, RootFirstContiguousLevels) {
  const auto levels = EstimateTreeShape(SmoothHistogram(), 50000,
                                        VecOptions(10));
  ASSERT_GE(levels.size(), 2u);
  for (size_t l = 0; l < levels.size(); ++l) {
    EXPECT_EQ(levels[l].level, l + 1);
  }
  EXPECT_EQ(levels.front().num_nodes, 1u);
  EXPECT_DOUBLE_EQ(levels.front().avg_covering_radius, 1.0);  // d⁺.
  // Node counts grow down the tree; radii shrink.
  for (size_t l = 1; l < levels.size(); ++l) {
    EXPECT_GE(levels[l].num_nodes, levels[l - 1].num_nodes);
    EXPECT_LE(levels[l].avg_covering_radius,
              levels[l - 1].avg_covering_radius + 1e-12);
  }
}

TEST(EstimateTreeShape, TinyDatasetIsSingleLeafRoot) {
  const auto levels = EstimateTreeShape(SmoothHistogram(), 10,
                                        VecOptions(4));
  ASSERT_EQ(levels.size(), 1u);
  EXPECT_EQ(levels[0].num_nodes, 1u);
  EXPECT_DOUBLE_EQ(levels[0].avg_entries, 10.0);
}

TEST(EstimateTreeShape, PredictsRealTreeShapeWithinFactorTwo) {
  const size_t n = 20000, D = 10;
  const auto data = GenerateClustered(n, D, 179);
  MTreeOptions topt;  // 4 KB nodes.
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, topt);
  const auto actual = tree.CollectStats(1.0);

  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto h = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const auto predicted = EstimateTreeShape(h, n, VecOptions(D));

  EXPECT_EQ(predicted.size(), actual.levels.size());
  // Leaf count within a factor of 2 of reality.
  const double real_leaves =
      static_cast<double>(actual.levels.back().num_nodes);
  const double pred_leaves =
      static_cast<double>(predicted.back().num_nodes);
  EXPECT_GT(pred_leaves, 0.5 * real_leaves);
  EXPECT_LT(pred_leaves, 2.0 * real_leaves);
}

TEST(EstimateTreeShape, FeedsLevelBasedModel) {
  const auto h = SmoothHistogram();
  const auto levels = EstimateTreeShape(h, 100000, VecOptions(20));
  const LevelBasedCostModel model(h, levels, 100000);
  const double nodes = model.RangeNodes(0.1);
  EXPECT_GT(nodes, 1.0);
  EXPECT_LT(nodes, 1e6);
  EXPECT_GT(model.NnNodes(1), 0.0);
}

TEST(EstimateTreeShape, Validation) {
  const auto h = SmoothHistogram();
  EXPECT_THROW(EstimateTreeShape(h, 0, VecOptions(4)), std::invalid_argument);
  ShapeEstimatorOptions bad = VecOptions(4);
  bad.leaf_entry_bytes = 0;
  EXPECT_THROW(EstimateTreeShape(h, 10, bad), std::invalid_argument);
  bad = VecOptions(4);
  bad.node_size_bytes = 2;
  bad.node_header_bytes = 5;
  EXPECT_THROW(EstimateTreeShape(h, 10, bad), std::invalid_argument);
}

}  // namespace
}  // namespace mcm
