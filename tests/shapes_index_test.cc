// End-to-end: the M-tree and cost models over a non-vector metric space —
// 2-d shapes under the Hausdorff distance (the paper's shape-matching
// motivation [15]).

#include <algorithm>

#include <gtest/gtest.h>

#include "mcm/cost/nmcm.h"
#include "mcm/dataset/shape_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/set_metrics.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/check/check_mtree.h"

namespace mcm {
namespace {

TEST(ShapesIndex, RangeAndKnnMatchLinearScan) {
  MTreeOptions options;
  const auto shapes = GenerateShapes(400, 419);
  auto tree = MTree<PointSetTraits>::BulkLoad(shapes, HausdorffMetric{},
                                              options);
  EXPECT_TRUE(check::CheckMTree(tree).ok());

  const HausdorffMetric metric;
  const auto queries = GenerateShapeQueries(8, 419);
  for (const auto& q : queries) {
    for (double radius : {0.02, 0.05, 0.2}) {
      size_t expected = 0;
      for (const auto& s : shapes) expected += metric(q, s) <= radius ? 1 : 0;
      EXPECT_EQ(tree.RangeSearch(q, radius).size(), expected);
    }
    std::vector<double> all;
    for (const auto& s : shapes) all.push_back(metric(q, s));
    std::sort(all.begin(), all.end());
    const auto knn = tree.KnnSearch(q, 3);
    ASSERT_EQ(knn.size(), 3u);
    for (size_t i = 0; i < 3; ++i) {
      EXPECT_NEAR(knn[i].distance, all[i], 1e-9);
    }
  }
}

TEST(ShapesIndex, CostModelTracksMeasurement) {
  MTreeOptions options;
  const auto shapes = GenerateShapes(1500, 421);
  auto tree = MTree<PointSetTraits>::BulkLoad(shapes, HausdorffMetric{},
                                              options);
  // Hausdorff distances in [0,1]^2 are bounded by sqrt(2).
  const double d_plus = std::sqrt(2.0);
  EstimatorOptions eo;
  eo.num_bins = 100;
  eo.d_plus = d_plus;
  eo.max_pairs = 100000;
  const auto hist =
      EstimateDistanceDistribution(shapes, HausdorffMetric{}, eo);
  const NodeBasedCostModel model(hist, tree.CollectStats(d_plus));

  const auto queries = GenerateShapeQueries(60, 421);
  const double radius = 0.05;
  double nodes = 0.0, dists = 0.0;
  for (const auto& q : queries) {
    QueryStats stats;
    tree.RangeSearch(q, radius, &stats);
    nodes += static_cast<double>(stats.nodes_accessed);
    dists += static_cast<double>(stats.distance_computations);
  }
  nodes /= static_cast<double>(queries.size());
  dists /= static_cast<double>(queries.size());
  EXPECT_NEAR(model.RangeNodes(radius), nodes, 0.30 * nodes + 1.0);
  EXPECT_NEAR(model.RangeDistances(radius), dists, 0.30 * dists + 5.0);
}

TEST(ShapesIndex, PagedStoreHandlesVariableSizeShapes) {
  MTreeOptions options;
  options.node_size_bytes = 4096;
  ShapeSpec spec;
  spec.points_per_shape = 16;
  const auto shapes = GenerateShapes(300, 431, spec);
  auto store = std::make_unique<PagedNodeStore<PointSetTraits>>(
      std::make_unique<InMemoryPageFile>(options.node_size_bytes), 64);
  auto tree = MTree<PointSetTraits>::BulkLoad(shapes, HausdorffMetric{},
                                              options, std::move(store));
  EXPECT_EQ(tree.size(), 300u);
  EXPECT_TRUE(check::CheckMTree(tree).ok());
  const auto r = tree.RangeSearch(shapes[0], 0.0);
  EXPECT_FALSE(r.empty());
}

}  // namespace
}  // namespace mcm
