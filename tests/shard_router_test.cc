// The shard layer's contracts. The ones that matter most:
//
//  - N=1 degeneracy: one-shard execution is bit-identical to the
//    unsharded M-tree — the answer lists AND the distance/node counters.
//  - Any-N determinism: range and k-NN answers match the unsharded index
//    exactly (oids, distances, order) for both assignment policies, with
//    and without cost routing, and at any executor thread count.
//  - Provable skipping: every shard the range plan skips is exhaustively
//    verified to contain no result.
//  - k-NN bound propagation tightens work without changing answers.
//  - Admission control under a tiny budget neither deadlocks nor changes
//    batch results.
//  - Persistence round-trips trees and sidecars.

#include <gtest/gtest.h>

#include <cstdio>
#include <set>
#include <string>
#include <vector>

#include "mcm/dataset/vector_datasets.h"
#include "mcm/engine/executor.h"
#include "mcm/engine/metric_index.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/mtree/mtree.h"
#include "mcm/shard/partition.h"
#include "mcm/shard/router.h"
#include "mcm/shard/sharded_index.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<L2Distance>;
using Router = shard::ShardRouter<VecTraits>;

static_assert(MetricIndex<Router>);

constexpr size_t kN = 600;
constexpr size_t kDim = 4;
constexpr size_t kQueries = 25;
constexpr uint64_t kSeed = 42;

std::vector<FloatVector> Dataset() {
  return GenerateVectorDataset(VectorDatasetKind::kClustered, kN, kDim,
                               kSeed);
}

std::vector<FloatVector> Queries() {
  return GenerateVectorQueries(VectorDatasetKind::kClustered, kQueries,
                               kDim, kSeed + 1);
}

MTreeOptions SmallNodes() {
  MTreeOptions options;
  options.node_size_bytes = 512;  // A few levels even at this scale.
  return options;
}

shard::ShardedMTree<VecTraits> BuildSharded(size_t num_shards,
                                            shard::Assignment assignment) {
  shard::ShardedOptions options;
  options.num_shards = num_shards;
  options.assignment = assignment;
  options.tree = SmallNodes();
  return shard::ShardedMTree<VecTraits>::Create(Dataset(), L2Distance{},
                                               options);
}

template <typename Object>
void ExpectSameResults(const std::vector<SearchResult<Object>>& expected,
                       const std::vector<SearchResult<Object>>& actual) {
  ASSERT_EQ(expected.size(), actual.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(expected[i].oid, actual[i].oid) << "position " << i;
    EXPECT_DOUBLE_EQ(expected[i].distance, actual[i].distance)
        << "position " << i;
  }
}

TEST(ShardPlanner, CoversEveryObjectExactlyOnce) {
  const auto objects = Dataset();
  for (const auto assignment :
       {shard::Assignment::kHash, shard::Assignment::kClustered}) {
    const auto plan =
        shard::PlanShards(objects, L2Distance{}, 8, assignment, kSeed);
    std::set<size_t> seen;
    for (const auto& members : plan.members) {
      for (const size_t position : members) {
        EXPECT_TRUE(seen.insert(position).second)
            << "position " << position << " assigned twice";
      }
    }
    EXPECT_EQ(seen.size(), objects.size());
  }
}

TEST(ShardPlanner, ClusteredShardsAreNonEmpty) {
  const auto objects = Dataset();
  const auto plan = shard::PlanShards(objects, L2Distance{}, 8,
                                      shard::Assignment::kClustered, kSeed);
  for (size_t s = 0; s < plan.members.size(); ++s) {
    EXPECT_FALSE(plan.members[s].empty()) << "shard " << s;
  }
}

// N=1: answers AND counters must match the unsharded tree bit for bit —
// the sharded build with one shard is the same bulk load, and the router
// passes the query straight through.
TEST(ShardRouter, SingleShardBitIdenticalIncludingCounters) {
  const auto objects = Dataset();
  const auto queries = Queries();
  const auto unsharded =
      MTree<VecTraits>::BulkLoad(objects, L2Distance{}, SmallNodes());
  const auto sharded = BuildSharded(1, shard::Assignment::kClustered);
  const Router router(sharded);
  const double radius = 0.5;
  for (const auto& q : queries) {
    QueryStats expected_stats;
    QueryStats actual_stats;
    ExpectSameResults(unsharded.RangeSearch(q, radius, &expected_stats),
                      router.RangeSearch(q, radius, &actual_stats));
    EXPECT_EQ(expected_stats.distance_computations,
              actual_stats.distance_computations);
    EXPECT_EQ(expected_stats.nodes_accessed, actual_stats.nodes_accessed);

    ExpectSameResults(unsharded.KnnSearch(q, 10, &expected_stats),
                      router.KnnSearch(q, 10, &actual_stats));
    EXPECT_EQ(expected_stats.distance_computations,
              actual_stats.distance_computations);
    EXPECT_EQ(expected_stats.nodes_accessed, actual_stats.nodes_accessed);
  }
}

// Any shard count, both assignment policies, routing on and off: the
// merged answers match the unsharded index exactly.
TEST(ShardRouter, AnswersMatchUnshardedAtAnyShardCount) {
  const auto objects = Dataset();
  const auto queries = Queries();
  const auto unsharded =
      MTree<VecTraits>::BulkLoad(objects, L2Distance{}, SmallNodes());
  for (const auto assignment :
       {shard::Assignment::kHash, shard::Assignment::kClustered}) {
    for (const size_t num_shards : {2u, 4u, 16u}) {
      const auto sharded = BuildSharded(num_shards, assignment);
      ASSERT_EQ(sharded.size(), objects.size());
      for (const bool cost_routing : {false, true}) {
        shard::RouterOptions options;
        options.cost_routing = cost_routing;
        const Router router(sharded, options);
        for (const auto& q : queries) {
          for (const double radius : {0.15, 0.5, 1.5}) {
            ExpectSameResults(unsharded.RangeSearch(q, radius),
                              router.RangeSearch(q, radius));
          }
          for (const size_t k : {1u, 5u, 20u}) {
            ExpectSameResults(unsharded.KnnSearch(q, k),
                              router.KnnSearch(q, k));
          }
        }
      }
    }
  }
}

// Every shard the plan skips provably contains no result: brute-force
// every member of the skipped shard and require d(Q, member) > radius.
TEST(ShardRouter, SkippedShardsProvablyEmpty) {
  const auto objects = Dataset();
  const auto queries = Queries();
  const L2Distance metric;
  const auto sharded = BuildSharded(8, shard::Assignment::kClustered);
  const Router router(sharded);
  size_t total_skips = 0;
  for (const auto& q : queries) {
    for (const double radius : {0.1, 0.3, 0.8}) {
      const auto plan = router.PlanRange(q, radius);
      for (const auto& decision : plan.decisions) {
        if (decision.dispatched) continue;
        ++total_skips;
        for (const uint64_t oid : sharded.shard_oids(decision.shard)) {
          EXPECT_GT(metric(q, objects[oid]), radius)
              << "shard " << decision.shard << " skipped but oid " << oid
              << " is a result";
        }
      }
    }
  }
  // The clustered workload at these radii must actually exercise the
  // skip path — a plan that never skips would vacuously pass.
  EXPECT_GT(total_skips, 0u);
}

// Cost routing must reduce total node reads on the clustered workload
// (skips + cheapest-first k-NN bounds), while answers stay identical.
TEST(ShardRouter, CostRoutingReadsFewerNodes) {
  const auto queries = Queries();
  const auto sharded = BuildSharded(8, shard::Assignment::kClustered);
  shard::RouterOptions naive_options;
  naive_options.cost_routing = false;
  const Router naive(sharded, naive_options);
  const Router routed(sharded);
  uint64_t naive_nodes = 0;
  uint64_t routed_nodes = 0;
  for (const auto& q : queries) {
    QueryStats naive_stats;
    QueryStats routed_stats;
    ExpectSameResults(naive.RangeSearch(q, 0.3, &naive_stats),
                      routed.RangeSearch(q, 0.3, &routed_stats));
    naive_nodes += naive_stats.nodes_accessed;
    routed_nodes += routed_stats.nodes_accessed;

    ExpectSameResults(naive.KnnSearch(q, 5, &naive_stats),
                      routed.KnnSearch(q, 5, &routed_stats));
    naive_nodes += naive_stats.nodes_accessed;
    routed_nodes += routed_stats.nodes_accessed;
  }
  EXPECT_LT(routed_nodes, naive_nodes);
}

// The router is a MetricIndex: batch execution over it is bit-identical
// at any thread count (and to the sequential loop).
TEST(ShardRouter, BatchExecutionThreadCountInvariant) {
  const auto queries = Queries();
  const auto sharded = BuildSharded(4, shard::Assignment::kClustered);
  const Router router(sharded);
  const double radius = 0.5;
  std::vector<std::vector<SearchResult<FloatVector>>> sequential;
  for (const auto& q : queries) {
    sequential.push_back(router.RangeSearch(q, radius));
  }
  for (const size_t threads : {1u, 2u, 4u, 8u}) {
    engine::ExecutorOptions options;
    options.num_threads = threads;
    const engine::BatchExecutor<Router> executor(router, options);
    const auto batch = executor.RangeSearchBatch(queries, radius);
    ASSERT_EQ(batch.results.size(), sequential.size());
    ASSERT_EQ(batch.latencies_us.size(), queries.size());
    for (size_t i = 0; i < sequential.size(); ++i) {
      ExpectSameResults(sequential[i], batch.results[i]);
      EXPECT_GT(batch.latencies_us[i], 0.0);
    }
  }
}

// A tiny predicted-node budget forces queries to queue; the batch must
// still complete with identical answers (no deadlock, no loss).
TEST(ShardRouter, AdmissionControlUnderTinyBudget) {
  const auto queries = Queries();
  const auto sharded = BuildSharded(4, shard::Assignment::kClustered);
  const Router unthrottled(sharded);
  shard::RouterOptions options;
  options.inflight_budget = 2.0;  // Far below any query's demand.
  options.per_shard_inflight = 1;
  const Router throttled(sharded, options);
  engine::ExecutorOptions executor_options;
  executor_options.num_threads = 8;
  const engine::BatchExecutor<Router> executor(throttled, executor_options);
  const auto batch = executor.RangeSearchBatch(queries, 0.5);
  for (size_t i = 0; i < queries.size(); ++i) {
    ExpectSameResults(unthrottled.RangeSearch(queries[i], 0.5),
                      batch.results[i]);
  }
}

// EXPLAIN rows account for every shard and reconcile with the totals.
TEST(ShardRouter, ExplainReportAccountsForEveryShard) {
  const auto queries = Queries();
  const auto sharded = BuildSharded(8, shard::Assignment::kClustered);
  const Router router(sharded);
  const auto report = router.ExplainRange(queries[0], 0.3);
  EXPECT_EQ(report.rows.size(), sharded.num_shards());
  EXPECT_EQ(report.dispatched + report.skipped, sharded.num_shards());
  uint64_t nodes = 0;
  for (const auto& row : report.rows) {
    if (!row.dispatched) {
      EXPECT_GT(row.lower_bound, 0.3);
      EXPECT_EQ(row.actual_nodes, 0u);
    }
    nodes += row.actual_nodes;
  }
  EXPECT_EQ(nodes, report.actual_nodes);

  const auto knn_report = router.ExplainKnn(queries[0], 5);
  EXPECT_EQ(knn_report.rows.size(), sharded.num_shards());
  EXPECT_EQ(knn_report.results, 5u);
}

// Save + reopen: identical answers and identical routing decisions.
TEST(ShardedMTree, PersistenceRoundTrip) {
  const auto queries = Queries();
  const auto sharded = BuildSharded(4, shard::Assignment::kClustered);
  const Router router(sharded);

  std::string path = ::testing::TempDir() + "/sharded_roundtrip";
  SaveShardedMTree(sharded, path);
  shard::ShardedOptions open_options;
  open_options.tree = SmallNodes();
  const auto reopened = shard::OpenShardedMTree<VecTraits>(
      path, L2Distance{}, open_options);
  EXPECT_EQ(reopened.num_shards(), sharded.num_shards());
  EXPECT_EQ(reopened.size(), sharded.size());
  EXPECT_DOUBLE_EQ(reopened.d_plus(), sharded.d_plus());
  const Router reopened_router(reopened);
  for (const auto& q : queries) {
    ExpectSameResults(router.RangeSearch(q, 0.5),
                      reopened_router.RangeSearch(q, 0.5));
    ExpectSameResults(router.KnnSearch(q, 10),
                      reopened_router.KnnSearch(q, 10));
    const auto before = router.PlanRange(q, 0.3);
    const auto after = reopened_router.PlanRange(q, 0.3);
    ASSERT_EQ(before.decisions.size(), after.decisions.size());
    for (size_t s = 0; s < before.decisions.size(); ++s) {
      EXPECT_EQ(before.decisions[s].dispatched,
                after.decisions[s].dispatched);
      EXPECT_DOUBLE_EQ(before.decisions[s].lower_bound,
                       after.decisions[s].lower_bound);
    }
    ASSERT_EQ(before.order.size(), after.order.size());
    for (size_t i = 0; i < before.order.size(); ++i) {
      EXPECT_EQ(before.order[i], after.order[i]);
    }
  }
  for (size_t s = 0; s < sharded.num_shards(); ++s) {
    std::remove((path + ".shard" + std::to_string(s)).c_str());
    std::remove((path + ".shard" + std::to_string(s) + ".meta").c_str());
  }
  std::remove((path + ".shards").c_str());
}

}  // namespace
}  // namespace mcm
