// Direct tests of the node splitter: group completeness, radius
// correctness, parent-distance alignment, and policy-specific behavior.

#include <set>

#include <gtest/gtest.h>

#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/vector_metrics.h"
#include "mcm/mtree/split.h"

namespace mcm {
namespace {

std::vector<const FloatVector*> Pointers(const std::vector<FloatVector>& v) {
  std::vector<const FloatVector*> out;
  for (const auto& p : v) out.push_back(&p);
  return out;
}

class SplitPolicyTest
    : public ::testing::TestWithParam<std::pair<PromotePolicy,
                                                PartitionPolicy>> {};

TEST_P(SplitPolicyTest, OutcomeIsAPartitionWithCorrectRadii) {
  const auto points = GenerateClustered(40, 4, 479);
  const auto ptrs = Pointers(points);
  const std::vector<double> radii(points.size(), 0.0);
  const LInfDistance metric;
  NodeSplitter<FloatVector, LInfDistance> splitter(ptrs, radii, metric);
  RandomEngine rng = MakeEngine(479);
  const SplitOutcome out = splitter.Split(GetParam().first, GetParam().second,
                                          32, rng);

  // Every index appears exactly once across the two groups.
  std::set<size_t> seen;
  for (size_t i : out.first_group) EXPECT_TRUE(seen.insert(i).second);
  for (size_t i : out.second_group) EXPECT_TRUE(seen.insert(i).second);
  EXPECT_EQ(seen.size(), points.size());
  EXPECT_FALSE(out.first_group.empty());
  EXPECT_FALSE(out.second_group.empty());

  // Promoted entries belong to their own groups.
  EXPECT_NE(std::find(out.first_group.begin(), out.first_group.end(),
                      out.promoted_first),
            out.first_group.end());
  EXPECT_NE(std::find(out.second_group.begin(), out.second_group.end(),
                      out.promoted_second),
            out.second_group.end());

  // Distances are to the promoted object; radii cover every member.
  for (size_t g = 0; g < out.first_group.size(); ++g) {
    const double d = metric(points[out.promoted_first],
                            points[out.first_group[g]]);
    EXPECT_NEAR(out.first_distances[g], d, 1e-12);
    EXPECT_LE(d, out.first_radius + 1e-12);
  }
  for (size_t g = 0; g < out.second_group.size(); ++g) {
    const double d = metric(points[out.promoted_second],
                            points[out.second_group[g]]);
    EXPECT_NEAR(out.second_distances[g], d, 1e-12);
    EXPECT_LE(d, out.second_radius + 1e-12);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Policies, SplitPolicyTest,
    ::testing::Values(
        std::pair{PromotePolicy::kRandom, PartitionPolicy::kBalanced},
        std::pair{PromotePolicy::kSampling, PartitionPolicy::kBalanced},
        std::pair{PromotePolicy::kMMRad, PartitionPolicy::kHyperplane},
        std::pair{PromotePolicy::kMaxLbDist, PartitionPolicy::kHyperplane}),
    [](const auto& info) { return "Case" + std::to_string(info.index); });

TEST(NodeSplitter, BalancedPartitionIsBalanced) {
  const auto points = GenerateUniform(41, 3, 487);
  const auto ptrs = Pointers(points);
  const std::vector<double> radii(points.size(), 0.0);
  const LInfDistance metric;
  NodeSplitter<FloatVector, LInfDistance> splitter(ptrs, radii, metric);
  RandomEngine rng = MakeEngine(487);
  const auto out = splitter.Split(PromotePolicy::kRandom,
                                  PartitionPolicy::kBalanced, 8, rng);
  const size_t a = out.first_group.size();
  const size_t b = out.second_group.size();
  EXPECT_LE(a > b ? a - b : b - a, 1u);
}

TEST(NodeSplitter, InternalEntryRadiiInflateCoveringRadius) {
  // Routing entries carry their own covering radii; the split radius must
  // be max(d + child_radius), not just max distance.
  const std::vector<FloatVector> points = {{0.0f}, {1.0f}};
  const auto ptrs = Pointers(points);
  const std::vector<double> radii = {0.25, 0.5};
  const LInfDistance metric;
  NodeSplitter<FloatVector, LInfDistance> splitter(ptrs, radii, metric);
  RandomEngine rng = MakeEngine(491);
  const auto out = splitter.Split(PromotePolicy::kMMRad,
                                  PartitionPolicy::kBalanced, 8, rng);
  // Each singleton group's radius equals its own child radius.
  const double r1 = out.first_group.front() == 0 ? 0.25 : 0.5;
  EXPECT_DOUBLE_EQ(out.first_radius, r1);
}

TEST(NodeSplitter, MMRadPicksTighterSplitThanWorstCase) {
  // Two tight clusters: mM_RAD must promote one object per cluster,
  // yielding max radius << the cross-cluster distance.
  ClusteredSpec spec;
  spec.num_clusters = 2;
  spec.sigma = 0.01;
  const auto points = GenerateClustered(30, 3, 499, spec);
  const auto ptrs = Pointers(points);
  const std::vector<double> radii(points.size(), 0.0);
  const LInfDistance metric;
  NodeSplitter<FloatVector, LInfDistance> splitter(ptrs, radii, metric);
  RandomEngine rng = MakeEngine(499);
  const auto out = splitter.Split(PromotePolicy::kMMRad,
                                  PartitionPolicy::kHyperplane, 8, rng);
  EXPECT_LT(std::max(out.first_radius, out.second_radius), 0.2);
}

TEST(NodeSplitter, DuplicateObjectsSplitCleanly) {
  const std::vector<FloatVector> points(10, FloatVector{0.5f, 0.5f});
  const auto ptrs = Pointers(points);
  const std::vector<double> radii(points.size(), 0.0);
  const LInfDistance metric;
  NodeSplitter<FloatVector, LInfDistance> splitter(ptrs, radii, metric);
  RandomEngine rng = MakeEngine(503);
  const auto out = splitter.Split(PromotePolicy::kSampling,
                                  PartitionPolicy::kBalanced, 8, rng);
  EXPECT_EQ(out.first_group.size() + out.second_group.size(), 10u);
  EXPECT_DOUBLE_EQ(out.first_radius, 0.0);
  EXPECT_DOUBLE_EQ(out.second_radius, 0.0);
}

TEST(NodeSplitter, RejectsDegenerateInput) {
  const std::vector<FloatVector> one = {{0.5f}};
  const auto ptrs = Pointers(one);
  const std::vector<double> radii = {0.0};
  const LInfDistance metric;
  EXPECT_THROW((NodeSplitter<FloatVector, LInfDistance>(ptrs, radii, metric)),
               std::invalid_argument);
  const std::vector<FloatVector> two = {{0.5f}, {0.6f}};
  const auto ptrs2 = Pointers(two);
  const std::vector<double> bad_radii = {0.0};
  EXPECT_THROW(
      (NodeSplitter<FloatVector, LInfDistance>(ptrs2, bad_radii, metric)),
      std::invalid_argument);
}

}  // namespace
}  // namespace mcm
