// Seeded thread-safety violations. This TU is deliberately WRONG: it is
// valid C++ that must be REJECTED by clang's -Werror=thread-safety (the
// `thread_safety_analysis` ctest compiles it and asserts failure). It is
// never linked into anything.
//
// Each function below is a distinct class of bug the capability
// annotations exist to catch; if an edit to common/mutex.h or
// common/thread_annotations.h ever neuters the analysis (say, a macro
// quietly becoming a no-op under clang), this file starts compiling and
// the ctest fails loudly.

#include "mcm/common/mutex.h"
#include "mcm/common/thread_annotations.h"

namespace mcm {
namespace {

class Seeded {
 public:
  // VIOLATION: reads a guarded member with no lock held.
  int ReadUnlocked() { return value_; }

  // VIOLATION: writes a guarded member under the WRONG mutex.
  void WriteWrongLock() {
    MutexLock lock(&other_mu_);
    value_ = 1;
  }

  // VIOLATION: double-acquisition of a non-reentrant mutex.
  void LockTwice() {
    mu_.Lock();
    mu_.Lock();
    mu_.Unlock();
    mu_.Unlock();
  }

  // VIOLATION: returns while still holding the mutex (no unlock on the
  // path out of the function).
  void NeverUnlock() { mu_.Lock(); }

  // VIOLATION: calls a REQUIRES(mu_) function without holding mu_.
  void CallRequiresUnlocked() { MustHold(); }

 private:
  void MustHold() MCM_REQUIRES(mu_) { ++value_; }

  Mutex mu_;
  Mutex other_mu_;
  int value_ MCM_GUARDED_BY(mu_) = 0;
};

// Anchor so the class is odr-used and unused-warnings stay quiet. Never
// actually called — several of the seeded bugs would deadlock for real.
int Use() {
  Seeded s;
  s.ReadUnlocked();
  s.WriteWrongLock();
  s.LockTwice();
  s.NeverUnlock();
  s.CallRequiresUnlocked();
  return 0;
}

}  // namespace
}  // namespace mcm
