#include "mcm/metric/string_metrics.h"

#include <cmath>
#include <limits>
#include <stdexcept>

#include <gtest/gtest.h>

#include "mcm/common/random.h"
#include "mcm/dataset/text_datasets.h"

namespace mcm {
namespace {

TEST(EditDistance, ClassicCases) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
  EXPECT_EQ(EditDistance("a", "b"), 1u);
}

TEST(EditDistance, SymmetricAndBoundedByLongerLength) {
  EXPECT_EQ(EditDistance("casa", "cassa"), EditDistance("cassa", "casa"));
  EXPECT_LE(EditDistance("amore", "morte"), 5u);
}

TEST(EditDistance, InsertionOnlyEqualsLengthDifference) {
  EXPECT_EQ(EditDistance("ab", "aXbY"), 2u);
  EXPECT_EQ(EditDistance("ciao", "ciaone"), 2u);
}

TEST(BoundedEditDistance, AgreesWithFullComputationWithinBound) {
  const std::vector<std::string> words = GenerateKeywords(60, 5);
  for (size_t i = 0; i < words.size(); ++i) {
    for (size_t j = i; j < words.size(); j += 7) {
      const size_t full = EditDistance(words[i], words[j]);
      for (size_t bound : {1u, 3u, 8u, 30u}) {
        const size_t bounded = BoundedEditDistance(words[i], words[j], bound);
        if (full <= bound) {
          EXPECT_EQ(bounded, full) << words[i] << " / " << words[j];
        } else {
          EXPECT_GT(bounded, bound) << words[i] << " / " << words[j];
        }
      }
    }
  }
}

TEST(BoundedEditDistance, QuickRejectOnLengthGap) {
  EXPECT_GT(BoundedEditDistance("ab", "abcdefgh", 3), 3u);
  EXPECT_EQ(BoundedEditDistance("abc", "abc", 0), 0u);
  EXPECT_GT(BoundedEditDistance("abc", "abd", 0), 0u);
}

TEST(WeightedEditDistance, UnitCostsMatchPlainEditDistance) {
  const WeightedEditDistance w(1.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(w("kitten", "sitting"), 3.0);
  EXPECT_DOUBLE_EQ(w("", "ab"), 2.0);
}

TEST(WeightedEditDistance, ExpensiveSubstitutionPrefersInsertDelete) {
  // substitution cost 3 > insert + delete: a mismatch costs 2.
  const WeightedEditDistance w(1.0, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(w("a", "b"), 2.0);
}

TEST(WeightedEditDistance, AsymmetricCostsWeighDirection) {
  const WeightedEditDistance w(2.0, 1.0, 1.5);
  EXPECT_DOUBLE_EQ(w("", "aa"), 4.0);  // Two inserts.
  EXPECT_DOUBLE_EQ(w("aa", ""), 2.0);  // Two deletes.
}

TEST(WeightedEditDistance, RejectsNonPositiveCosts) {
  EXPECT_THROW(WeightedEditDistance(0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(WeightedEditDistance(1.0, -1.0, 1.0), std::invalid_argument);
}

TEST(EditDistanceMetricDistanceWithin, LimitEqualToTrueDistanceIsExact) {
  // d("kitten", "sitting") = 3: the boundary limit must return the exact
  // distance, not the out-of-range sentinel.
  const EditDistanceMetric metric;
  EXPECT_DOUBLE_EQ(metric.DistanceWithin("kitten", "sitting", 3.0), 3.0);
  EXPECT_TRUE(std::isinf(metric.DistanceWithin("kitten", "sitting", 2.0)));
  // A fractional limit between d-1 and d is still exceeded.
  EXPECT_TRUE(std::isinf(metric.DistanceWithin("kitten", "sitting", 2.5)));
  // And a fractional limit just above d still returns d exactly.
  EXPECT_DOUBLE_EQ(metric.DistanceWithin("kitten", "sitting", 3.5), 3.0);
}

TEST(EditDistanceMetricDistanceWithin, EmptyStrings) {
  const EditDistanceMetric metric;
  EXPECT_DOUBLE_EQ(metric.DistanceWithin("", "", 0.0), 0.0);
  EXPECT_DOUBLE_EQ(metric.DistanceWithin("", "abc", 3.0), 3.0);
  EXPECT_DOUBLE_EQ(metric.DistanceWithin("abc", "", 3.0), 3.0);
  EXPECT_TRUE(std::isinf(metric.DistanceWithin("", "abc", 2.0)));
}

TEST(EditDistanceMetricDistanceWithin, LimitZero) {
  const EditDistanceMetric metric;
  EXPECT_DOUBLE_EQ(metric.DistanceWithin("same", "same", 0.0), 0.0);
  EXPECT_TRUE(std::isinf(metric.DistanceWithin("same", "sane", 0.0)));
  // Negative limits can never be met, even by identical strings.
  EXPECT_TRUE(std::isinf(metric.DistanceWithin("same", "same", -1.0)));
}

TEST(EditDistanceMetricDistanceWithin, AgreesWithUnboundedOnKeywords) {
  // Cross-check the banded computation against the full metric: within
  // the limit both agree exactly; past it the bounded form reports +inf.
  const EditDistanceMetric metric;
  const auto words = GenerateKeywords(60, 911);
  for (size_t i = 0; i < words.size(); ++i) {
    for (size_t j = i + 1; j < words.size(); j += 7) {
      const double exact = metric(words[i], words[j]);
      for (const double limit : {0.0, 1.0, 2.0, 3.0, exact, exact + 1.0}) {
        const double got = metric.DistanceWithin(words[i], words[j], limit);
        if (exact <= limit) {
          EXPECT_DOUBLE_EQ(got, exact)
              << words[i] << " / " << words[j] << " limit " << limit;
        } else {
          EXPECT_TRUE(std::isinf(got))
              << words[i] << " / " << words[j] << " limit " << limit;
        }
      }
    }
  }
}

TEST(EditDistanceMetricDistanceWithin, InfiniteLimitIsTheFullMetric) {
  const EditDistanceMetric metric;
  const double inf = std::numeric_limits<double>::infinity();
  EXPECT_DOUBLE_EQ(metric.DistanceWithin("kitten", "sitting", inf), 3.0);
  EXPECT_DOUBLE_EQ(metric.DistanceWithin("", "", inf), 0.0);
}

TEST(HammingDistance, CountsMismatches) {
  EXPECT_DOUBLE_EQ(HammingDistance("karolin", "kathrin"), 3.0);
  EXPECT_DOUBLE_EQ(HammingDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(HammingDistance("abc", "abc"), 0.0);
}

TEST(HammingDistance, LengthMismatchThrows) {
  EXPECT_THROW(HammingDistance("ab", "abc"), std::invalid_argument);
}

}  // namespace
}  // namespace mcm
