#include "mcm/metric/string_metrics.h"

#include <stdexcept>

#include <gtest/gtest.h>

#include "mcm/common/random.h"
#include "mcm/dataset/text_datasets.h"

namespace mcm {
namespace {

TEST(EditDistance, ClassicCases) {
  EXPECT_EQ(EditDistance("kitten", "sitting"), 3u);
  EXPECT_EQ(EditDistance("flaw", "lawn"), 2u);
  EXPECT_EQ(EditDistance("", ""), 0u);
  EXPECT_EQ(EditDistance("", "abc"), 3u);
  EXPECT_EQ(EditDistance("abc", ""), 3u);
  EXPECT_EQ(EditDistance("same", "same"), 0u);
  EXPECT_EQ(EditDistance("a", "b"), 1u);
}

TEST(EditDistance, SymmetricAndBoundedByLongerLength) {
  EXPECT_EQ(EditDistance("casa", "cassa"), EditDistance("cassa", "casa"));
  EXPECT_LE(EditDistance("amore", "morte"), 5u);
}

TEST(EditDistance, InsertionOnlyEqualsLengthDifference) {
  EXPECT_EQ(EditDistance("ab", "aXbY"), 2u);
  EXPECT_EQ(EditDistance("ciao", "ciaone"), 2u);
}

TEST(BoundedEditDistance, AgreesWithFullComputationWithinBound) {
  const std::vector<std::string> words = GenerateKeywords(60, 5);
  for (size_t i = 0; i < words.size(); ++i) {
    for (size_t j = i; j < words.size(); j += 7) {
      const size_t full = EditDistance(words[i], words[j]);
      for (size_t bound : {1u, 3u, 8u, 30u}) {
        const size_t bounded = BoundedEditDistance(words[i], words[j], bound);
        if (full <= bound) {
          EXPECT_EQ(bounded, full) << words[i] << " / " << words[j];
        } else {
          EXPECT_GT(bounded, bound) << words[i] << " / " << words[j];
        }
      }
    }
  }
}

TEST(BoundedEditDistance, QuickRejectOnLengthGap) {
  EXPECT_GT(BoundedEditDistance("ab", "abcdefgh", 3), 3u);
  EXPECT_EQ(BoundedEditDistance("abc", "abc", 0), 0u);
  EXPECT_GT(BoundedEditDistance("abc", "abd", 0), 0u);
}

TEST(WeightedEditDistance, UnitCostsMatchPlainEditDistance) {
  const WeightedEditDistance w(1.0, 1.0, 1.0);
  EXPECT_DOUBLE_EQ(w("kitten", "sitting"), 3.0);
  EXPECT_DOUBLE_EQ(w("", "ab"), 2.0);
}

TEST(WeightedEditDistance, ExpensiveSubstitutionPrefersInsertDelete) {
  // substitution cost 3 > insert + delete: a mismatch costs 2.
  const WeightedEditDistance w(1.0, 1.0, 3.0);
  EXPECT_DOUBLE_EQ(w("a", "b"), 2.0);
}

TEST(WeightedEditDistance, AsymmetricCostsWeighDirection) {
  const WeightedEditDistance w(2.0, 1.0, 1.5);
  EXPECT_DOUBLE_EQ(w("", "aa"), 4.0);  // Two inserts.
  EXPECT_DOUBLE_EQ(w("aa", ""), 2.0);  // Two deletes.
}

TEST(WeightedEditDistance, RejectsNonPositiveCosts) {
  EXPECT_THROW(WeightedEditDistance(0.0, 1.0, 1.0), std::invalid_argument);
  EXPECT_THROW(WeightedEditDistance(1.0, -1.0, 1.0), std::invalid_argument);
}

TEST(HammingDistance, CountsMismatches) {
  EXPECT_DOUBLE_EQ(HammingDistance("karolin", "kathrin"), 3.0);
  EXPECT_DOUBLE_EQ(HammingDistance("", ""), 0.0);
  EXPECT_DOUBLE_EQ(HammingDistance("abc", "abc"), 0.0);
}

TEST(HammingDistance, LengthMismatchThrows) {
  EXPECT_THROW(HammingDistance("ab", "abc"), std::invalid_argument);
}

}  // namespace
}  // namespace mcm
