#include "mcm/common/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(TablePrinter, AlignsColumns) {
  TablePrinter t({"name", "v"});
  t.AddRow({"a", "1"});
  t.AddRow({"long-name", "22"});
  std::ostringstream out;
  t.Print(out);
  const std::string text = out.str();
  EXPECT_NE(text.find("name"), std::string::npos);
  EXPECT_NE(text.find("long-name"), std::string::npos);
  // All four lines (header, separator, two rows) present.
  size_t lines = 0;
  for (char c : text) lines += c == '\n' ? 1 : 0;
  EXPECT_EQ(lines, 4u);
}

TEST(TablePrinter, ShortRowsArePadded) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"only"});
  std::ostringstream out;
  EXPECT_NO_THROW(t.Print(out));
}

TEST(TablePrinter, NumFormatsPrecision) {
  EXPECT_EQ(TablePrinter::Num(3.14159, 2), "3.14");
  EXPECT_EQ(TablePrinter::Num(2.0, 0), "2");
  EXPECT_EQ(TablePrinter::Num(-1.5, 1), "-1.5");
}

}  // namespace
}  // namespace mcm
