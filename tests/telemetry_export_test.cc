// Exporter contracts under concurrency: a 4-worker batch with tracing on
// yields a Chrome-trace JSON that parses, whose spans form a laminar
// (properly nesting) family within each thread lane; and the Prometheus
// snapshot reports exactly the registry's tallies — counter values,
// histogram _count/_sum, and the exemplar query ids.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "mcm/dataset/vector_datasets.h"
#include "mcm/engine/executor.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/mtree.h"
#include "mcm/obs/export.h"
#include "mcm/obs/metrics.h"
#include "mcm/obs/phase.h"
#include "mcm/obs/telemetry.h"

namespace mcm {
namespace {

using Traits = VectorTraits<L2Distance>;

class ObsGuard {
 public:
  explicit ObsGuard(bool enabled) : previous_(ObsEnabled()) {
    SetObsEnabledForTesting(enabled);
  }
  ~ObsGuard() { SetObsEnabledForTesting(previous_); }

 private:
  bool previous_;
};

MTree<Traits> BuildTree(size_t n = 500) {
  MTreeOptions options;
  options.node_size_bytes = 512;
  MTree<Traits> tree{L2Distance{}, options};
  const auto data =
      GenerateVectorDataset(VectorDatasetKind::kClustered, n, 4, 7);
  for (size_t i = 0; i < data.size(); ++i) tree.Insert(data[i], i);
  return tree;
}

std::string ReadFile(const std::string& path) {
  std::ifstream in(path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Runs one traced 4-worker batch and returns the sink's snapshot.
std::vector<QuerySpans> RunTracedBatch(size_t num_queries = 32) {
  const auto tree = BuildTree();
  const auto queries = GenerateVectorDataset(VectorDatasetKind::kClustered,
                                             num_queries, 4, 11);
  engine::ExecutorOptions options;
  options.num_threads = 4;
  options.span_capacity = PhaseSpanLog::kDefaultCapacity;
  const engine::BatchExecutor<MTree<Traits>> executor(tree, options);
  const auto batch = executor.RangeSearchBatch(queries, 0.4);
  EXPECT_EQ(batch.results.size(), num_queries);
  EXPECT_EQ(batch.span_logs.size(), num_queries);
  return TelemetrySink::Global().Snapshot();
}

TEST(TelemetrySink, CollectsEveryTracedQuery) {
  ObsGuard obs(true);
  TelemetrySink::Global().Clear();
  const auto snapshot = RunTracedBatch();
  EXPECT_EQ(snapshot.size(), 32u);
  for (const auto& q : snapshot) {
    EXPECT_FALSE(q.spans.empty());
  }
  TelemetrySink::Global().Clear();
  EXPECT_EQ(TelemetrySink::Global().size(), 0u);
}

TEST(ChromeTrace, SpansNestPerThreadLane) {
  ObsGuard obs(true);
  TelemetrySink::Global().Clear();
  const auto snapshot = RunTracedBatch();

  // Each query runs on one worker; within a (query, lane) pair any two
  // spans must be disjoint or strictly contained (a laminar family).
  size_t checked_pairs = 0;
  for (const auto& q : snapshot) {
    for (size_t i = 0; i < q.spans.size(); ++i) {
      for (size_t j = i + 1; j < q.spans.size(); ++j) {
        const auto& a = q.spans[i];
        const auto& b = q.spans[j];
        if (a.lane != b.lane) continue;
        const bool disjoint = a.end_ns <= b.start_ns || b.end_ns <= a.start_ns;
        const bool a_in_b = a.start_ns >= b.start_ns && a.end_ns <= b.end_ns;
        const bool b_in_a = b.start_ns >= a.start_ns && b.end_ns <= a.end_ns;
        EXPECT_TRUE(disjoint || a_in_b || b_in_a)
            << "overlapping spans " << ToString(a.phase) << " and "
            << ToString(b.phase) << " in lane " << a.lane;
        ++checked_pairs;
      }
    }
  }
  EXPECT_GT(checked_pairs, 0u);
  TelemetrySink::Global().Clear();
}

TEST(ChromeTrace, JsonParsesWithExpectedEventShape) {
  ObsGuard obs(true);
  TelemetrySink::Global().Clear();
  const auto snapshot = RunTracedBatch();
  std::ostringstream out;
  WriteChromeTrace(out, snapshot);

  const auto parsed = ParseJson(out.str());
  ASSERT_TRUE(parsed.has_value()) << "trace is not valid JSON";
  ASSERT_TRUE(parsed->is_array());
  size_t total_spans = 0;
  for (const auto& q : snapshot) total_spans += q.spans.size();
  EXPECT_EQ(parsed->array_value.size(), total_spans);

  for (const auto& event : parsed->array_value) {
    ASSERT_TRUE(event.is_object());
    const auto* ph = event.Find("ph");
    ASSERT_NE(ph, nullptr);
    EXPECT_EQ(ph->string_value, "X");
    EXPECT_NE(event.Find("name"), nullptr);
    EXPECT_NE(event.Find("ts"), nullptr);
    EXPECT_NE(event.Find("dur"), nullptr);
    EXPECT_NE(event.Find("tid"), nullptr);
    const auto* args = event.Find("args");
    ASSERT_NE(args, nullptr);
    EXPECT_NE(args->Find("query"), nullptr);
  }
  TelemetrySink::Global().Clear();
}

TEST(FlushTelemetry, WritesConfiguredFiles) {
  ObsGuard obs(true);
  TelemetrySink::Global().Clear();
  MetricsRegistry::Global().Clear();
  (void)RunTracedBatch();

  const std::string trace_path = "telemetry_export_test_trace.json";
  const std::string metrics_path = "telemetry_export_test_metrics.prom";
  SetTraceOutForTesting(trace_path);
  SetMetricsOutForTesting(metrics_path);
  EXPECT_EQ(FlushTelemetry(), 2);
  SetTraceOutForTesting("");
  SetMetricsOutForTesting("");
  EXPECT_EQ(TelemetrySink::Global().size(), 0u);  // Cleared by the flush.

  const auto trace = ParseJson(ReadFile(trace_path));
  ASSERT_TRUE(trace.has_value());
  EXPECT_TRUE(trace->is_array());
  EXPECT_FALSE(trace->array_value.empty());

  const std::string prom = ReadFile(metrics_path);
  EXPECT_NE(prom.find("# TYPE"), std::string::npos);
  EXPECT_NE(prom.find("mcm_phase_traverse_us_count"), std::string::npos);
  std::remove(trace_path.c_str());
  std::remove(metrics_path.c_str());
  MetricsRegistry::Global().Clear();
}

TEST(Prometheus, SnapshotMatchesRegistryExactly) {
  ObsGuard obs(true);
  TelemetrySink::Global().Clear();
  MetricsRegistry::Global().Clear();
  (void)RunTracedBatch();
  MetricsRegistry::Global().GetCounter("test.queries.total").Increment(32);

  std::ostringstream out;
  MetricsRegistry::Global().WritePrometheus(out);
  const std::string prom = out.str();

  // Counter value is reported verbatim (name sanitized to underscores).
  EXPECT_NE(prom.find("test_queries_total 32"), std::string::npos);

  // Every phase histogram's _count and exemplar line match the registry.
  auto& hist = MetricsRegistry::Global().GetHistogram(
      PhaseHistogramName(QueryPhase::kTraverse), DefaultLatencyBoundsUs());
  ASSERT_GT(hist.Count(), 0u);
  {
    std::ostringstream expected;
    expected << "mcm_phase_traverse_us_count " << hist.Count();
    EXPECT_NE(prom.find(expected.str()), std::string::npos)
        << "missing: " << expected.str();
  }
  double exemplar_value = 0.0;
  uint64_t exemplar_query = 0;
  ASSERT_TRUE(hist.LastExemplar(&exemplar_value, &exemplar_query));
  {
    std::ostringstream expected;
    expected << "query_id=\"" << exemplar_query << "\"";
    EXPECT_NE(prom.find(expected.str()), std::string::npos);
  }

  // Cumulative bucket counts: the +Inf bucket equals the total count.
  {
    std::ostringstream expected;
    expected << "mcm_phase_traverse_us_bucket{le=\"+Inf\"} " << hist.Count();
    EXPECT_NE(prom.find(expected.str()), std::string::npos)
        << "missing: " << expected.str();
  }
  MetricsRegistry::Global().Clear();
  TelemetrySink::Global().Clear();
}

}  // namespace
}  // namespace mcm
