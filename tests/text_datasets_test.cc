#include "mcm/dataset/text_datasets.h"

#include <cctype>
#include <set>

#include <gtest/gtest.h>

#include "mcm/metric/string_metrics.h"

namespace mcm {
namespace {

TEST(TextDatasets, SpecsMatchTable1) {
  const auto& specs = TextDatasets();
  ASSERT_EQ(specs.size(), 5u);
  EXPECT_EQ(specs[0].code, "D");
  EXPECT_EQ(specs[0].vocabulary_size, 17936u);
  EXPECT_EQ(specs[1].code, "DC");
  EXPECT_EQ(specs[1].vocabulary_size, 12701u);
  EXPECT_EQ(specs[2].code, "GL");
  EXPECT_EQ(specs[2].vocabulary_size, 11973u);
  EXPECT_EQ(specs[3].code, "OF");
  EXPECT_EQ(specs[3].vocabulary_size, 18719u);
  EXPECT_EQ(specs[4].code, "PS");
  EXPECT_EQ(specs[4].vocabulary_size, 19846u);
}

TEST(GenerateKeywords, ExactCountAllDistinct) {
  const auto words = GenerateKeywords(2000, 1);
  EXPECT_EQ(words.size(), 2000u);
  const std::set<std::string> unique(words.begin(), words.end());
  EXPECT_EQ(unique.size(), 2000u);
}

TEST(GenerateKeywords, LowercaseAsciiOnly) {
  for (const auto& w : GenerateKeywords(500, 2)) {
    EXPECT_FALSE(w.empty());
    for (char c : w) {
      EXPECT_TRUE(std::islower(static_cast<unsigned char>(c))) << w;
    }
  }
}

TEST(GenerateKeywords, RespectsMaxLength) {
  for (const auto& w : GenerateKeywords(500, 3, /*max_len=*/10)) {
    EXPECT_LE(w.size(), 10u);
  }
}

TEST(GenerateKeywords, DeterministicPerSeed) {
  EXPECT_EQ(GenerateKeywords(100, 7), GenerateKeywords(100, 7));
  EXPECT_NE(GenerateKeywords(100, 7), GenerateKeywords(100, 8));
}

TEST(GenerateKeywords, EditDistancesStayWithin25) {
  // Words are capped at 25 chars, so pairwise edit distance <= 25 — the
  // paper's observed maximum, which sizes its 25-bin histograms.
  const auto words = GenerateKeywords(150, 4);
  for (size_t i = 0; i < words.size(); i += 3) {
    for (size_t j = i + 1; j < words.size(); j += 5) {
      EXPECT_LE(EditDistance(words[i], words[j]), 25u);
    }
  }
}

TEST(GenerateKeywords, WordLengthsLookItalianLike) {
  // Typical content-word lengths: mass concentrated between 4 and 14 chars.
  const auto words = GenerateKeywords(3000, 5);
  size_t mid = 0;
  double total_len = 0.0;
  for (const auto& w : words) {
    total_len += static_cast<double>(w.size());
    mid += (w.size() >= 4 && w.size() <= 14) ? 1 : 0;
  }
  EXPECT_GT(mid, words.size() * 4 / 5);
  const double mean = total_len / static_cast<double>(words.size());
  EXPECT_GT(mean, 5.0);
  EXPECT_LT(mean, 12.0);
}

TEST(GenerateKeywords, MaxLenTooSmallRejected) {
  EXPECT_THROW(GenerateKeywords(10, 1, /*max_len=*/2), std::invalid_argument);
}

TEST(GenerateKeywordQueries, IndependentOfDatasetStream) {
  const auto words = GenerateKeywords(500, 11);
  const auto queries = GenerateKeywordQueries(100, 11);
  EXPECT_EQ(queries.size(), 100u);
  // Same generator family: queries are plausible keywords (format checks).
  for (const auto& q : queries) {
    EXPECT_FALSE(q.empty());
    EXPECT_LE(q.size(), 25u);
  }
  // The two streams are different sequences.
  EXPECT_NE(std::vector<std::string>(words.begin(), words.begin() + 100),
            queries);
}

TEST(GenerateKeywordQueries, Deterministic) {
  EXPECT_EQ(GenerateKeywordQueries(50, 3), GenerateKeywordQueries(50, 3));
}

}  // namespace
}  // namespace mcm
