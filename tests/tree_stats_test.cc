#include "mcm/cost/tree_stats.h"

#include <gtest/gtest.h>

#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;

TEST(AggregateLevels, AveragesPerLevel) {
  std::vector<NodeStatRecord> nodes = {
      {1, 1.0, 2, false},
      {2, 0.5, 10, true},
      {2, 0.3, 20, true},
  };
  const auto levels = AggregateLevels(nodes);
  ASSERT_EQ(levels.size(), 2u);
  EXPECT_EQ(levels[0].level, 1u);
  EXPECT_EQ(levels[0].num_nodes, 1u);
  EXPECT_DOUBLE_EQ(levels[0].avg_covering_radius, 1.0);
  EXPECT_EQ(levels[1].num_nodes, 2u);
  EXPECT_DOUBLE_EQ(levels[1].avg_covering_radius, 0.4);
  EXPECT_DOUBLE_EQ(levels[1].avg_entries, 15.0);
}

TEST(AggregateLevels, EmptyInput) {
  EXPECT_TRUE(AggregateLevels({}).empty());
}

TEST(CollectStats, StructuralIdentitiesHold) {
  MTreeOptions options;
  options.node_size_bytes = 512;
  const auto data = GenerateClustered(2500, 6, 97);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  const auto stats = tree.CollectStats(1.0);

  EXPECT_EQ(stats.num_objects, 2500u);
  EXPECT_EQ(stats.num_nodes(), tree.store().NumNodes());
  ASSERT_FALSE(stats.levels.empty());
  // Root level: one node with the conventional radius d+ (footnote 1).
  EXPECT_EQ(stats.levels.front().num_nodes, 1u);
  EXPECT_DOUBLE_EQ(stats.levels.front().avg_covering_radius, 1.0);

  // M_{l+1} equals the number of entries at level l (the identity behind
  // Eq. 16), and leaf entries sum to n.
  std::vector<double> entries_per_level(stats.levels.size(), 0.0);
  std::vector<size_t> leaf_entries(1, 0);
  double total_leaf_entries = 0.0;
  for (const auto& node : stats.nodes) {
    entries_per_level[node.level - 1] +=
        static_cast<double>(node.num_entries);
    if (node.is_leaf) total_leaf_entries += node.num_entries;
  }
  for (size_t l = 0; l + 1 < stats.levels.size(); ++l) {
    EXPECT_DOUBLE_EQ(entries_per_level[l],
                     static_cast<double>(stats.levels[l + 1].num_nodes));
  }
  EXPECT_DOUBLE_EQ(total_leaf_entries, 2500.0);

  // Radii shrink as we descend (on average): parent balls cover child balls.
  for (size_t l = 1; l + 1 < stats.levels.size(); ++l) {
    EXPECT_GE(stats.levels[l].avg_covering_radius,
              stats.levels[l + 1].avg_covering_radius * 0.5);
  }
}

TEST(CollectStats, EmptyTree) {
  MTree<VecTraits> tree(LInfDistance{}, MTreeOptions{});
  const auto stats = tree.CollectStats(1.0);
  EXPECT_EQ(stats.num_objects, 0u);
  EXPECT_TRUE(stats.nodes.empty());
  EXPECT_TRUE(stats.levels.empty());
}

TEST(CollectStats, LeafLevelMarksLeaves) {
  MTreeOptions options;
  options.node_size_bytes = 256;
  const auto data = GenerateUniform(500, 3, 101);
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, options);
  const auto stats = tree.CollectStats(1.0);
  for (const auto& node : stats.nodes) {
    EXPECT_EQ(node.is_leaf, node.level == stats.height);
  }
}

}  // namespace
}  // namespace mcm
