#include "mcm/cost/tuner.h"

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(IoCostMs, PaperParameters) {
  const DiskCostParameters params;  // t_pos = 10 ms, t_trans = 1 ms/KB.
  EXPECT_DOUBLE_EQ(IoCostMs(params, 4096), 14.0);
  EXPECT_DOUBLE_EQ(IoCostMs(params, 8192), 18.0);
  EXPECT_DOUBLE_EQ(IoCostMs(params, 512), 10.5);
}

TEST(TotalCostMs, CombinesCpuAndIo) {
  const DiskCostParameters params;  // c_CPU = 5 ms.
  // 100 distances, 10 node reads of 4 KB: 5*100 + 14*10.
  EXPECT_DOUBLE_EQ(TotalCostMs(params, 100.0, 10.0, 4096), 640.0);
}

TEST(ChooseNodeSize, PicksInteriorMinimum) {
  const DiskCostParameters params;
  // Shape like Fig. 5: I/O falls with node size, CPU rises past a point.
  const std::vector<NodeSizeSample> samples = {
      {1024, 50.0, 200.0},   // 250 + 2200   = 2450
      {4096, 60.0, 70.0},    // 300 + 980    = 1280
      {8192, 90.0, 40.0},    // 450 + 720    = 1170
      {16384, 180.0, 25.0},  // 900 + 650    = 1550
  };
  const TuningResult result = ChooseNodeSize(params, samples);
  EXPECT_EQ(result.best_node_size_bytes, 8192u);
  EXPECT_DOUBLE_EQ(result.best_total_ms, 1170.0);
  ASSERT_EQ(result.total_ms.size(), 4u);
  EXPECT_DOUBLE_EQ(result.total_ms[0], 2450.0);
  EXPECT_DOUBLE_EQ(result.total_ms[3], 1550.0);
}

TEST(ChooseNodeSize, SingleSample) {
  const TuningResult result =
      ChooseNodeSize(DiskCostParameters{}, {{2048, 1.0, 1.0}});
  EXPECT_EQ(result.best_node_size_bytes, 2048u);
}

TEST(ChooseNodeSize, EmptyRejected) {
  EXPECT_THROW(ChooseNodeSize(DiskCostParameters{}, {}),
               std::invalid_argument);
}

TEST(ChooseNodeSize, CustomCoefficientsShiftOptimum) {
  // Free CPU: the largest node size (lowest I/O count) must win.
  DiskCostParameters io_only;
  io_only.cpu_ms_per_distance = 0.0;
  const std::vector<NodeSizeSample> samples = {
      {1024, 50.0, 200.0}, {4096, 60.0, 70.0}, {65536, 500.0, 10.0}};
  EXPECT_EQ(ChooseNodeSize(io_only, samples).best_node_size_bytes, 65536u);

  // Free I/O: the smallest CPU cost wins.
  DiskCostParameters cpu_only;
  cpu_only.position_ms = 0.0;
  cpu_only.transfer_ms_per_kb = 0.0;
  EXPECT_EQ(ChooseNodeSize(cpu_only, samples).best_node_size_bytes, 1024u);
}

}  // namespace
}  // namespace mcm
