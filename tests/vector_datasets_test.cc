#include "mcm/dataset/vector_datasets.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "mcm/metric/vector_metrics.h"

namespace mcm {
namespace {

TEST(GenerateUniform, ShapeAndBounds) {
  const auto points = GenerateUniform(500, 7, 1);
  ASSERT_EQ(points.size(), 500u);
  for (const auto& p : points) {
    ASSERT_EQ(p.size(), 7u);
    for (float x : p) {
      EXPECT_GE(x, 0.0f);
      EXPECT_LE(x, 1.0f);
    }
  }
}

TEST(GenerateUniform, DeterministicPerSeed) {
  EXPECT_EQ(GenerateUniform(50, 3, 9), GenerateUniform(50, 3, 9));
  EXPECT_NE(GenerateUniform(50, 3, 9), GenerateUniform(50, 3, 10));
}

TEST(GenerateUniform, CoordinateMeanNearHalf) {
  const auto points = GenerateUniform(5000, 2, 5);
  double sum = 0.0;
  for (const auto& p : points) sum += p[0];
  EXPECT_NEAR(sum / 5000.0, 0.5, 0.03);
}

TEST(GenerateClustered, ShapeBoundsAndDeterminism) {
  const auto points = GenerateClustered(400, 10, 2);
  ASSERT_EQ(points.size(), 400u);
  for (const auto& p : points) {
    ASSERT_EQ(p.size(), 10u);
    for (float x : p) {
      EXPECT_GE(x, 0.0f);
      EXPECT_LE(x, 1.0f);
    }
  }
  EXPECT_EQ(points, GenerateClustered(400, 10, 2));
}

TEST(GenerateClustered, PointsConcentrateAroundFewCenters) {
  // With sigma = 0.1 the nearest-neighbor distance within a cluster is far
  // smaller than the typical inter-cluster distance: most points must have
  // a close neighbor.
  const auto points = GenerateClustered(300, 8, 3);
  LInfDistance metric;
  size_t with_close_neighbor = 0;
  for (size_t i = 0; i < points.size(); ++i) {
    double best = 1.0;
    for (size_t j = 0; j < points.size(); ++j) {
      if (i == j) continue;
      best = std::min(best, metric(points[i], points[j]));
    }
    with_close_neighbor += best < 0.2 ? 1 : 0;
  }
  EXPECT_GT(with_close_neighbor, points.size() * 9 / 10);
}

TEST(GenerateClustered, CustomSpecControlsSpread) {
  ClusteredSpec tight;
  tight.num_clusters = 2;
  tight.sigma = 0.01;
  const auto points = GenerateClustered(200, 4, 3, tight);
  // With two tiny clusters, pairwise L-inf distances are bimodal: near zero
  // or near the center separation. Count the near-zero fraction.
  LInfDistance metric;
  size_t small = 0, total = 0;
  for (size_t i = 0; i < points.size(); i += 5) {
    for (size_t j = i + 1; j < points.size(); j += 5) {
      small += metric(points[i], points[j]) < 0.1 ? 1 : 0;
      ++total;
    }
  }
  EXPECT_GT(static_cast<double>(small) / static_cast<double>(total), 0.3);
}

TEST(GenerateVectorQueries, BiasedModelSharesDistributionButNotPoints) {
  const auto data =
      GenerateVectorDataset(VectorDatasetKind::kClustered, 500, 6, 7);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 100, 6, 7);
  // Queries are fresh draws: not members of the dataset.
  for (const auto& q : queries) {
    EXPECT_EQ(std::count(data.begin(), data.end(), q), 0);
  }
  // But they follow the same cluster centers: every query must lie close to
  // some data point (same S).
  LInfDistance metric;
  for (const auto& q : queries) {
    double best = 1.0;
    for (const auto& p : data) best = std::min(best, metric(q, p));
    EXPECT_LT(best, 0.35);
  }
}

TEST(GenerateVectorDataset, DispatchesOnKind) {
  EXPECT_EQ(GenerateVectorDataset(VectorDatasetKind::kUniform, 10, 2, 1),
            GenerateUniform(10, 2, 1));
  EXPECT_EQ(GenerateVectorDataset(VectorDatasetKind::kClustered, 10, 2, 1),
            GenerateClustered(10, 2, 1));
}

TEST(VectorDatasets, RejectZeroDimension) {
  EXPECT_THROW(GenerateUniform(10, 0, 1), std::invalid_argument);
  EXPECT_THROW(GenerateClustered(10, 0, 1), std::invalid_argument);
}

TEST(GenerateClustered, RejectZeroClusters) {
  ClusteredSpec spec;
  spec.num_clusters = 0;
  EXPECT_THROW(GenerateClustered(10, 2, 1, spec), std::invalid_argument);
}

}  // namespace
}  // namespace mcm
