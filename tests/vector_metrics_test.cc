#include "mcm/metric/vector_metrics.h"

#include <cmath>
#include <stdexcept>

#include <gtest/gtest.h>

#include "mcm/common/random.h"

namespace mcm {
namespace {

TEST(L1Distance, KnownValues) {
  L1Distance d;
  EXPECT_DOUBLE_EQ(d({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(d({1, -1}, {1, -1}), 0.0);
  EXPECT_DOUBLE_EQ(d({-1, 2}, {1, -2}), 6.0);
}

TEST(L2Distance, KnownValues) {
  L2Distance d;
  EXPECT_DOUBLE_EQ(d({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(d({1, 1, 1}, {1, 1, 1}), 0.0);
  EXPECT_NEAR(d({0}, {1}), 1.0, 1e-12);
}

TEST(LInfDistance, KnownValues) {
  LInfDistance d;
  EXPECT_DOUBLE_EQ(d({0, 0}, {3, 4}), 4.0);
  EXPECT_DOUBLE_EQ(d({0.5f, 0.25f}, {0.5f, 0.25f}), 0.0);
  EXPECT_NEAR(d({-1, 0}, {2, 0.5f}), 3.0, 1e-6);
}

TEST(LpDistance, InterpolatesBetweenL1AndLInf) {
  const FloatVector a = {0, 0};
  const FloatVector b = {3, 4};
  EXPECT_NEAR(LpDistance(1.0)(a, b), L1Distance()(a, b), 1e-9);
  EXPECT_NEAR(LpDistance(2.0)(a, b), L2Distance()(a, b), 1e-9);
  // Lp approaches LInf as p grows.
  EXPECT_NEAR(LpDistance(64.0)(a, b), LInfDistance()(a, b), 0.05);
}

TEST(LpDistance, RejectsPBelowOne) {
  EXPECT_THROW(LpDistance(0.5), std::invalid_argument);
}

TEST(VectorMetrics, DimensionMismatchThrows) {
  EXPECT_THROW(L1Distance()({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(L2Distance()({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(LInfDistance()({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(LpDistance(3.0)({1, 2}, {1}), std::invalid_argument);
}

TEST(LpDistance, IntegerExponentFastPathMatchesL2) {
  // Regression for the integer-p special case: LpDistance(2.0) must route
  // through the same L2 kernel, so the two metrics agree to 1e-12 on
  // random vectors of every tail shape (and exactly on the fast path).
  auto rng = MakeEngine(71, 0);
  const LpDistance lp2(2.0);
  const L2Distance l2;
  for (const size_t dim : {1u, 5u, 8u, 13u, 16u, 33u, 64u, 100u}) {
    for (int rep = 0; rep < 25; ++rep) {
      FloatVector a(dim), b(dim);
      for (size_t i = 0; i < dim; ++i) {
        a[i] = static_cast<float>(UniformUnit(rng) * 2.0 - 1.0);
        b[i] = static_cast<float>(UniformUnit(rng) * 2.0 - 1.0);
      }
      EXPECT_NEAR(lp2(a, b), l2(a, b), 1e-12);
    }
  }
}

TEST(LpDistance, IntegerExponentMatchesGeneralPath) {
  // p = 3 and p = 4 take the binary-exponentiation fast path; they must
  // agree with the pow-based general path to rounding.
  auto rng = MakeEngine(73, 0);
  for (const double p : {3.0, 4.0, 7.0}) {
    const LpDistance fast(p);
    // Nudging p off the integer grid forces the std::pow general path.
    const LpDistance general(p + 1e-13);
    for (int rep = 0; rep < 20; ++rep) {
      FloatVector a(19), b(19);
      for (size_t i = 0; i < a.size(); ++i) {
        a[i] = static_cast<float>(UniformUnit(rng));
        b[i] = static_cast<float>(UniformUnit(rng));
      }
      EXPECT_NEAR(fast(a, b), general(a, b), 1e-9);
    }
  }
}

TEST(VectorMetrics, DistanceWithinExposedByAllMetrics) {
  const FloatVector a = {0, 0, 0};
  const FloatVector b = {3, 0, 4};
  EXPECT_EQ(L1Distance().DistanceWithin(a, b, 7.0), 7.0);
  EXPECT_EQ(L2Distance().DistanceWithin(a, b, 5.0), 5.0);
  EXPECT_EQ(LInfDistance().DistanceWithin(a, b, 4.0), 4.0);
  EXPECT_NEAR(LpDistance(2.0).DistanceWithin(a, b, 5.0), 5.0, 1e-12);
  // Beyond the bound the verdict must flip (value is exact or +inf).
  EXPECT_GT(L2Distance().DistanceWithin(a, b, 4.9), 4.9);
}

TEST(UnitCubeDiameter, KnownValues) {
  EXPECT_DOUBLE_EQ(UnitCubeDiameter(9, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(UnitCubeDiameter(5, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(
      UnitCubeDiameter(100, std::numeric_limits<double>::infinity()), 1.0);
}

}  // namespace
}  // namespace mcm
