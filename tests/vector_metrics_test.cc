#include "mcm/metric/vector_metrics.h"

#include <stdexcept>

#include <gtest/gtest.h>

namespace mcm {
namespace {

TEST(L1Distance, KnownValues) {
  L1Distance d;
  EXPECT_DOUBLE_EQ(d({0, 0}, {3, 4}), 7.0);
  EXPECT_DOUBLE_EQ(d({1, -1}, {1, -1}), 0.0);
  EXPECT_DOUBLE_EQ(d({-1, 2}, {1, -2}), 6.0);
}

TEST(L2Distance, KnownValues) {
  L2Distance d;
  EXPECT_DOUBLE_EQ(d({0, 0}, {3, 4}), 5.0);
  EXPECT_DOUBLE_EQ(d({1, 1, 1}, {1, 1, 1}), 0.0);
  EXPECT_NEAR(d({0}, {1}), 1.0, 1e-12);
}

TEST(LInfDistance, KnownValues) {
  LInfDistance d;
  EXPECT_DOUBLE_EQ(d({0, 0}, {3, 4}), 4.0);
  EXPECT_DOUBLE_EQ(d({0.5f, 0.25f}, {0.5f, 0.25f}), 0.0);
  EXPECT_NEAR(d({-1, 0}, {2, 0.5f}), 3.0, 1e-6);
}

TEST(LpDistance, InterpolatesBetweenL1AndLInf) {
  const FloatVector a = {0, 0};
  const FloatVector b = {3, 4};
  EXPECT_NEAR(LpDistance(1.0)(a, b), L1Distance()(a, b), 1e-9);
  EXPECT_NEAR(LpDistance(2.0)(a, b), L2Distance()(a, b), 1e-9);
  // Lp approaches LInf as p grows.
  EXPECT_NEAR(LpDistance(64.0)(a, b), LInfDistance()(a, b), 0.05);
}

TEST(LpDistance, RejectsPBelowOne) {
  EXPECT_THROW(LpDistance(0.5), std::invalid_argument);
}

TEST(VectorMetrics, DimensionMismatchThrows) {
  EXPECT_THROW(L1Distance()({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(L2Distance()({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(LInfDistance()({1, 2}, {1}), std::invalid_argument);
  EXPECT_THROW(LpDistance(3.0)({1, 2}, {1}), std::invalid_argument);
}

TEST(UnitCubeDiameter, KnownValues) {
  EXPECT_DOUBLE_EQ(UnitCubeDiameter(9, 2.0), 3.0);
  EXPECT_DOUBLE_EQ(UnitCubeDiameter(5, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(
      UnitCubeDiameter(100, std::numeric_limits<double>::infinity()), 1.0);
}

}  // namespace
}  // namespace mcm
