// Multi-viewpoint model tests (future work #2): construction, the
// query-adapted distribution's sanity, and the headline property — on a
// non-homogeneous dataset, per-query cost estimates from the blended
// distribution beat the single global F.

#include <cmath>

#include <gtest/gtest.h>

#include "mcm/bench_util/experiment.h"
#include "mcm/common/numeric.h"
#include "mcm/cost/lmcm.h"
#include "mcm/cost/nmcm.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/distribution/homogeneity.h"
#include "mcm/distribution/viewpoints.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;
using VecViewpoints = ViewpointSet<FloatVector, LInfDistance>;

TEST(ViewpointSet, BuildProducesRequestedViewpoints) {
  const auto data = GenerateUniform(500, 5, 257);
  ViewpointOptions options;
  options.num_viewpoints = 6;
  const auto set = VecViewpoints::Build(data, LInfDistance{}, options);
  EXPECT_EQ(set.viewpoints().size(), 6u);
  EXPECT_EQ(set.rdds().size(), 6u);
  for (const auto& rdd : set.rdds()) {
    EXPECT_EQ(rdd.num_bins(), options.num_bins);
    EXPECT_DOUBLE_EQ(rdd.d_plus(), options.d_plus);
  }
}

TEST(ViewpointSet, MaxMinViewpointsAreSpreadOut) {
  const auto data = GenerateNonHomogeneous(1000, 6, 263);
  ViewpointOptions options;
  options.num_viewpoints = 5;
  options.selection = ViewpointSelection::kMaxMin;
  const auto set = VecViewpoints::Build(data, LInfDistance{}, options);
  // Pairwise viewpoint distances should all be substantial.
  const LInfDistance metric;
  double min_pairwise = 1.0;
  for (size_t i = 0; i < set.viewpoints().size(); ++i) {
    for (size_t j = i + 1; j < set.viewpoints().size(); ++j) {
      min_pairwise = std::min(
          min_pairwise, metric(set.viewpoints()[i], set.viewpoints()[j]));
    }
  }
  EXPECT_GT(min_pairwise, 0.1);
}

TEST(ViewpointSet, QueryDistributionIsValidCdf) {
  const auto data = GenerateNonHomogeneous(800, 5, 269);
  ViewpointOptions options;
  const auto set = VecViewpoints::Build(data, LInfDistance{}, options);
  const auto queries = GenerateNonHomogeneousQueries(10, 5, 269);
  for (const auto& q : queries) {
    const auto hist = set.QueryDistribution(q);
    double prev = -1.0;
    for (double x = 0.0; x <= 1.0; x += 0.02) {
      const double f = hist.Cdf(x);
      EXPECT_GE(f, prev - 1e-12);
      EXPECT_GE(f, 0.0);
      EXPECT_LE(f, 1.0);
      prev = f;
    }
    EXPECT_DOUBLE_EQ(hist.Cdf(1.0), 1.0);
  }
}

TEST(ViewpointSet, QueryAtViewpointRecoversItsRdd) {
  const auto data = GenerateNonHomogeneous(800, 5, 271);
  ViewpointOptions options;
  options.num_viewpoints = 4;
  const auto set = VecViewpoints::Build(data, LInfDistance{}, options);
  // Blend of size 1 at an exact viewpoint = that viewpoint's own RDD.
  for (size_t v = 0; v < set.viewpoints().size(); ++v) {
    const auto hist = set.QueryDistribution(set.viewpoints()[v], 1);
    for (double x : {0.1, 0.3, 0.6}) {
      EXPECT_NEAR(hist.Cdf(x), set.rdds()[v].Cdf(x), 1e-9);
    }
  }
}

TEST(ViewpointSet, NonHomogeneousDatasetHasLowHv) {
  // Sanity: the stress dataset really is non-homogeneous.
  const auto data = GenerateNonHomogeneous(3000, 8, 277);
  HvOptions ho;
  ho.num_viewpoints = 80;
  ho.num_targets = 600;
  const auto hv = EstimateHomogeneity(data, LInfDistance{}, ho);
  EXPECT_LT(hv.hv, 0.85);

  const auto uniform = GenerateUniform(3000, 8, 277);
  const auto hv_uniform = EstimateHomogeneity(uniform, LInfDistance{}, ho);
  EXPECT_GT(hv_uniform.hv, hv.hv + 0.05);
}

TEST(ViewpointSet, QuerySensitiveBeatsGlobalFOnNonHomogeneousData) {
  // Note: the query-adapted distribution must be combined with N-MCM's
  // per-node radii — L-MCM's per-level average radii wash out exactly the
  // radius/position correlation (core nodes are tight, halo nodes wide)
  // that makes the non-homogeneous case hard. See bench/ext_multi_viewpoint.
  const size_t n = 4000, dim = 8;
  const auto data = GenerateNonHomogeneous(n, dim, 281);
  MTreeOptions topt;
  auto tree = MTree<VecTraits>::BulkLoad(data, LInfDistance{}, topt);
  const auto stats = tree.CollectStats(1.0);

  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto global = EstimateDistanceDistribution(data, LInfDistance{}, eo);
  const NodeBasedCostModel global_model(global, stats);

  ViewpointOptions vo;
  vo.num_viewpoints = 16;
  const auto set = VecViewpoints::Build(data, LInfDistance{}, vo);

  const auto queries = GenerateNonHomogeneousQueries(60, dim, 281);
  const double rq = 0.08;
  double global_err = 0.0, blended_err = 0.0;
  for (const auto& q : queries) {
    QueryStats qs;
    tree.RangeSearch(q, rq, &qs);
    const double measured = static_cast<double>(qs.distance_computations);
    const NodeBasedCostModel local_model(set.QueryDistribution(q), stats);
    global_err += RelativeError(global_model.RangeDistances(rq), measured);
    blended_err += RelativeError(local_model.RangeDistances(rq), measured);
  }
  global_err /= static_cast<double>(queries.size());
  blended_err /= static_cast<double>(queries.size());
  // The query-sensitive model must cut the mean per-query error notably.
  EXPECT_LT(blended_err, 0.9 * global_err)
      << "global=" << global_err << " blended=" << blended_err;
}

TEST(ViewpointSet, RejectsBadArguments) {
  const std::vector<FloatVector> one = {{0.5f}};
  EXPECT_THROW(
      VecViewpoints::Build(one, LInfDistance{}, ViewpointOptions{}),
      std::invalid_argument);
  const auto data = GenerateUniform(10, 2, 283);
  ViewpointOptions zero;
  zero.num_viewpoints = 0;
  EXPECT_THROW(VecViewpoints::Build(data, LInfDistance{}, zero),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcm
