// Section-5 vp-tree cost model tests: truncation/normalization (Eq. 22),
// boundary behavior, and predicted-vs-measured distance computations (the
// validation the paper defers to future work).

#include <gtest/gtest.h>

#include "mcm/bench_util/experiment.h"
#include "mcm/cost/vp_model.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/traits.h"
#include "mcm/vptree/vptree.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;

DistanceHistogram LinearHistogram() {
  std::vector<double> samples;
  for (int i = 1; i <= 1000; ++i) {
    samples.push_back(static_cast<double>(i) / 1000.0);
  }
  return DistanceHistogram(samples, 100, 1.0);
}

TEST(TruncateAndNormalize, RenormalizesMassBelowBound) {
  const auto h = LinearHistogram();  // Roughly uniform on [0, 1].
  const auto t = TruncateAndNormalize(h, 0.5);
  EXPECT_NEAR(t.Cdf(0.5), 1.0, 1e-9);
  EXPECT_NEAR(t.Cdf(0.25), 0.5, 0.02);
  EXPECT_DOUBLE_EQ(t.Cdf(0.9), 1.0);
  EXPECT_DOUBLE_EQ(t.d_plus(), 1.0);  // Domain unchanged, mass moved.
}

TEST(TruncateAndNormalize, BoundAboveDomainIsIdentity) {
  const auto h = LinearHistogram();
  const auto t = TruncateAndNormalize(h, 2.0);
  EXPECT_EQ(t.masses(), h.masses());
}

TEST(TruncateAndNormalize, PartialBinKeepsFraction) {
  // Two bins [0,1), [1,2), equal mass. Bound 1.5 keeps all of bin 0 and
  // half of bin 1 -> masses 2/3 and 1/3.
  const auto h = DistanceHistogram::FromMasses({0.5, 0.5}, 2.0);
  const auto t = TruncateAndNormalize(h, 1.5);
  EXPECT_NEAR(t.masses()[0], 2.0 / 3.0, 1e-9);
  EXPECT_NEAR(t.masses()[1], 1.0 / 3.0, 1e-9);
}

TEST(TruncateAndNormalize, DegenerateBoundYieldsPointMass) {
  // All mass above the bound: the subtree collapses to "everything at 0".
  const auto h = DistanceHistogram::FromMasses({0.0, 1.0}, 2.0);
  const auto t = TruncateAndNormalize(h, 0.5);
  EXPECT_NEAR(t.Cdf(1.0), 1.0, 1e-9);
  EXPECT_THROW(TruncateAndNormalize(h, 0.0), std::invalid_argument);
}

TEST(VpTreeCostModel, FullRadiusTouchesWholeTree) {
  const auto h = LinearHistogram();
  const VpTreeCostModel model(h, 1000);
  // r_Q = d⁺ forces every child probability to 1: the whole tree is
  // traversed, costing ~n distance computations (one per object).
  EXPECT_NEAR(model.RangeDistances(1.0), 1000.0, 30.0);
}

TEST(VpTreeCostModel, ZeroRadiusCostsAtLeastRootPath) {
  const auto h = LinearHistogram();
  const VpTreeCostModel model(h, 1024);
  const double d = model.RangeDistances(0.0);
  EXPECT_GE(d, 1.0);
  EXPECT_LT(d, 1024.0);
}

TEST(VpTreeCostModel, CostMonotoneInRadius) {
  const auto h = LinearHistogram();
  const VpTreeCostModel model(h, 500);
  double prev = 0.0;
  for (double r = 0.0; r <= 1.0; r += 0.1) {
    const double d = model.RangeDistances(r);
    EXPECT_GE(d, prev - 1e-9);
    prev = d;
  }
}

class VpModelValidation : public ::testing::TestWithParam<size_t> {};

TEST_P(VpModelValidation, PredictsMeasuredDistancesWithinBand) {
  const size_t arity = GetParam();
  const size_t n = 3000, D = 10;
  const auto data = GenerateUniform(n, D, 173);
  EstimatorOptions eo;
  eo.num_bins = 100;
  const auto h = EstimateDistanceDistribution(data, LInfDistance{}, eo);

  VpTreeOptions topt;
  topt.arity = arity;
  const VpTree<VecTraits> tree(data, LInfDistance{}, topt);

  VpCostModelOptions mopt;
  mopt.arity = arity;
  const VpTreeCostModel model(h, n, mopt);

  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kUniform, 100, D, 173);
  // Radius chosen to select ~0.5% of the data.
  const double rq = h.Quantile(0.005);
  const auto measured = MeasureRange(tree, queries, rq);
  const double predicted = model.RangeDistances(rq);
  // Model-only prediction (no tree statistics at all): generous 45% band.
  EXPECT_NEAR(predicted, measured.avg_dists, 0.45 * measured.avg_dists)
      << "arity=" << arity;
}

INSTANTIATE_TEST_SUITE_P(Arity, VpModelValidation, ::testing::Values(2, 4),
                         [](const auto& info) {
                           return "m" + std::to_string(info.param);
                         });

TEST(VpTreeCostModel, RejectsBadArguments) {
  const auto h = LinearHistogram();
  VpCostModelOptions bad;
  bad.arity = 1;
  EXPECT_THROW(VpTreeCostModel(h, 10, bad), std::invalid_argument);
  bad.arity = 2;
  bad.leaf_capacity = 0;
  EXPECT_THROW(VpTreeCostModel(h, 10, bad), std::invalid_argument);
  EXPECT_THROW(VpTreeCostModel(h, 0, VpCostModelOptions{}),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcm
