// vp-tree correctness: exact agreement with linear scan across arities,
// vantage-selection heuristics and leaf capacities, for vectors and strings.

#include <algorithm>

#include <gtest/gtest.h>

#include "mcm/dataset/text_datasets.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/traits.h"
#include "mcm/vptree/vptree.h"

namespace mcm {
namespace {

using VecTraits = VectorTraits<LInfDistance>;
using StrTraits = StringTraits<>;

class VpTreeArityTest : public ::testing::TestWithParam<size_t> {};

TEST_P(VpTreeArityTest, RangeMatchesLinearScan) {
  VpTreeOptions options;
  options.arity = GetParam();
  const auto data = GenerateClustered(600, 6, 137);
  const VpTree<VecTraits> tree(data, LInfDistance{}, options);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 20, 6, 137);
  const LInfDistance metric;
  for (const auto& q : queries) {
    for (double radius : {0.0, 0.05, 0.2, 0.6}) {
      size_t expected = 0;
      for (const auto& p : data) expected += metric(q, p) <= radius ? 1 : 0;
      const auto got = tree.RangeSearch(q, radius);
      EXPECT_EQ(got.size(), expected) << "radius=" << radius;
      for (size_t i = 1; i < got.size(); ++i) {
        EXPECT_GE(got[i].distance, got[i - 1].distance);
      }
    }
  }
}

TEST_P(VpTreeArityTest, KnnMatchesLinearScan) {
  VpTreeOptions options;
  options.arity = GetParam();
  const auto data = GenerateClustered(500, 5, 139);
  const VpTree<VecTraits> tree(data, LInfDistance{}, options);
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 15, 5, 139);
  const LInfDistance metric;
  for (const auto& q : queries) {
    std::vector<double> all;
    for (const auto& p : data) all.push_back(metric(q, p));
    std::sort(all.begin(), all.end());
    for (size_t k : {1u, 7u}) {
      const auto got = tree.KnnSearch(q, k);
      ASSERT_EQ(got.size(), k);
      for (size_t i = 0; i < k; ++i) {
        EXPECT_NEAR(got[i].distance, all[i], 1e-9);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Arity, VpTreeArityTest, ::testing::Values(2, 3, 5),
                         [](const auto& info) {
                           return "m" + std::to_string(info.param);
                         });

TEST(VpTree, StringsUnderEditDistance) {
  const auto words = GenerateKeywords(400, 149);
  VpTreeOptions options;
  options.arity = 3;
  const VpTree<StrTraits> tree(words, EditDistanceMetric{}, options);
  const EditDistanceMetric metric;
  for (const auto& q : GenerateKeywordQueries(10, 149)) {
    size_t expected = 0;
    for (const auto& w : words) expected += metric(q, w) <= 3.0 ? 1 : 0;
    EXPECT_EQ(tree.RangeSearch(q, 3.0).size(), expected);
  }
}

TEST(VpTree, BestSpreadSelectionStaysCorrect) {
  VpTreeOptions options;
  options.selection = VantageSelection::kBestSpread;
  const auto data = GenerateUniform(300, 4, 151);
  const VpTree<VecTraits> tree(data, LInfDistance{}, options);
  const LInfDistance metric;
  const FloatVector q = {0.3f, 0.7f, 0.1f, 0.9f};
  size_t expected = 0;
  for (const auto& p : data) expected += metric(q, p) <= 0.25 ? 1 : 0;
  EXPECT_EQ(tree.RangeSearch(q, 0.25).size(), expected);
}

TEST(VpTree, LeafCapacityBucketsStayCorrect) {
  VpTreeOptions options;
  options.leaf_capacity = 8;
  const auto data = GenerateClustered(400, 5, 157);
  const VpTree<VecTraits> tree(data, LInfDistance{}, options);
  const LInfDistance metric;
  const auto queries =
      GenerateVectorQueries(VectorDatasetKind::kClustered, 10, 5, 157);
  for (const auto& q : queries) {
    size_t expected = 0;
    for (const auto& p : data) expected += metric(q, p) <= 0.3 ? 1 : 0;
    EXPECT_EQ(tree.RangeSearch(q, 0.3).size(), expected);
  }
  const auto stats = tree.CollectStats();
  EXPECT_GT(stats.num_leaves, 0u);
  EXPECT_GT(stats.num_internal, 0u);
}

TEST(VpTree, StatsViewCountsNodes) {
  VpTreeOptions options;  // Binary, leaf capacity 1.
  const auto data = GenerateUniform(127, 3, 163);
  const VpTree<VecTraits> tree(data, LInfDistance{}, options);
  const auto stats = tree.CollectStats();
  EXPECT_EQ(stats.num_objects, 127u);
  // Every object is either a vantage point (internal) or in a leaf bucket:
  // with capacity 1, internal + leaves == n.
  EXPECT_EQ(stats.num_internal + stats.num_leaves, 127u);
  EXPECT_GE(stats.height, 7u);  // At least log2(n).
}

TEST(VpTree, EmptyAndSingleton) {
  const VpTree<VecTraits> empty({}, LInfDistance{}, VpTreeOptions{});
  EXPECT_TRUE(empty.RangeSearch({0.5f}, 1.0).empty());
  EXPECT_TRUE(empty.KnnSearch({0.5f}, 2).empty());

  const VpTree<VecTraits> one({{0.25f}}, LInfDistance{}, VpTreeOptions{});
  const auto r = one.RangeSearch({0.5f}, 0.3);
  ASSERT_EQ(r.size(), 1u);
  EXPECT_EQ(r[0].oid, 0u);
}

TEST(VpTree, DistanceCountersTrackWork) {
  VpTreeOptions options;
  const auto data = GenerateUniform(200, 4, 167);
  const VpTree<VecTraits> tree(data, LInfDistance{}, options);
  QueryStats stats;
  tree.RangeSearch({0.5f, 0.5f, 0.5f, 0.5f}, 1.0, &stats);
  // Full-radius query touches every object once.
  EXPECT_EQ(stats.distance_computations, 200u);
  QueryStats small;
  tree.RangeSearch({0.5f, 0.5f, 0.5f, 0.5f}, 0.05, &small);
  EXPECT_LT(small.distance_computations, 200u);
}

TEST(VpTree, RejectsBadOptions) {
  VpTreeOptions bad_arity;
  bad_arity.arity = 1;
  EXPECT_THROW(VpTree<VecTraits>({{0.1f}}, LInfDistance{}, bad_arity),
               std::invalid_argument);
  VpTreeOptions bad_leaf;
  bad_leaf.leaf_capacity = 0;
  EXPECT_THROW(VpTree<VecTraits>({{0.1f}}, LInfDistance{}, bad_leaf),
               std::invalid_argument);
}

}  // namespace
}  // namespace mcm
