// Witness-cascade integration tests: answers must be bit-identical with
// the cascade on and off across every index family, capacity 0 must leave
// no witness footprint at all (the pre-witness behavior), the M-tree must
// save a measurable fraction of metric evaluations on a string workload,
// and the persisted ancestor distances must survive save/open — including
// legacy version-1 files written before the cascade existed.

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <utility>
#include <vector>

#include "mcm/baseline/linear_scan.h"
#include "mcm/check/check_mtree.h"
#include "mcm/dataset/text_datasets.h"
#include "mcm/gnat/gnat.h"
#include "mcm/metric/traits.h"
#include "mcm/mtree/bulk_load.h"
#include "mcm/mtree/mtree.h"
#include "mcm/mtree/persist.h"
#include "mcm/obs/trace.h"
#include "mcm/vptree/vptree.h"

namespace mcm {
namespace {

using Traits = StringTraits<EditDistanceMetric>;

constexpr size_t kN = 1200;
constexpr size_t kNumQueries = 15;
constexpr uint64_t kSeed = 77;
const double kRadii[] = {1.0, 2.0, 3.0};

std::vector<std::string> Words() { return GenerateKeywords(kN, kSeed); }
std::vector<std::string> Queries() {
  return GenerateKeywordQueries(kNumQueries, kSeed + 1);
}

/// One workload execution: flattened (oid, distance) answer list over all
/// queries and radii, plus the summed counters.
struct WorkloadRun {
  std::vector<std::pair<uint64_t, double>> answers;
  uint64_t distances = 0;
  uint64_t avoided = 0;
};

template <typename Index>
WorkloadRun RunWorkload(const Index& index) {
  WorkloadRun run;
  for (const auto& q : Queries()) {
    for (const double radius : kRadii) {
      QueryStats st;
      for (const auto& r : index.RangeSearch(q, radius, &st)) {
        run.answers.emplace_back(r.oid, r.distance);
      }
      run.distances += st.distance_computations;
      run.avoided += st.distance_calcs_avoided_by_witness;
    }
  }
  return run;
}

MTree<Traits> MakeMTree(int capacity) {
  MTreeOptions options;
  options.node_size_bytes = 1024;
  options.witness_capacity = capacity;
  auto tree = MTree<Traits>::BulkLoad(Words(), EditDistanceMetric{}, options);
  tree.InstallWitnessCascade();
  return tree;
}

TEST(WitnessReuse, MTreeAnswersIdenticalAndCheaperWithWitnesses) {
  const auto off = RunWorkload(MakeMTree(0));
  const auto on = RunWorkload(MakeMTree(8));
  EXPECT_EQ(off.answers, on.answers);
  EXPECT_EQ(off.avoided, 0u);
  EXPECT_GT(on.avoided, 0u);
  EXPECT_LE(on.distances, off.distances);
}

TEST(WitnessReuse, MTreeSavesAtLeastFifteenPercentOnStrings) {
  const auto off = RunWorkload(MakeMTree(0));
  const auto on = RunWorkload(MakeMTree(8));
  EXPECT_LE(static_cast<double>(on.distances),
            0.85 * static_cast<double>(off.distances))
      << "w0 = " << off.distances << ", w8 = " << on.distances;
}

TEST(WitnessReuse, VpTreeAnswersIdenticalAndCheaperWithWitnesses) {
  // Bucketed leaves (capacity > 1) exercise the per-object guarded path;
  // with singleton leaves every witness cut is a whole-subtree prune and
  // the avoided-evaluation counter legitimately stays 0.
  VpTreeOptions w0;
  w0.witness_capacity = 0;
  w0.leaf_capacity = 8;
  VpTreeOptions w8;
  w8.witness_capacity = 8;
  w8.leaf_capacity = 8;
  const auto off =
      RunWorkload(VpTree<Traits>(Words(), EditDistanceMetric{}, w0));
  const auto on =
      RunWorkload(VpTree<Traits>(Words(), EditDistanceMetric{}, w8));
  EXPECT_EQ(off.answers, on.answers);
  EXPECT_EQ(off.avoided, 0u);
  EXPECT_GT(on.avoided, 0u);
  EXPECT_LE(on.distances, off.distances);
}

TEST(WitnessReuse, GnatAnswersIdenticalAndCheaperWithWitnesses) {
  GnatOptions w0;
  w0.witness_capacity = 0;
  GnatOptions w8;
  w8.witness_capacity = 8;
  const auto off =
      RunWorkload(Gnat<Traits>(Words(), EditDistanceMetric{}, w0));
  const auto on = RunWorkload(Gnat<Traits>(Words(), EditDistanceMetric{}, w8));
  EXPECT_EQ(off.answers, on.answers);
  EXPECT_EQ(off.avoided, 0u);
  EXPECT_GT(on.avoided, 0u);
  EXPECT_LE(on.distances, off.distances);
}

TEST(WitnessReuse, AllIndexesAgreeWithTheLinearScan) {
  const auto words = Words();  // LinearScan keeps a reference
  const LinearScan<Traits> scan(words, EditDistanceMetric{});
  const auto expected = RunWorkload(scan);
  EXPECT_EQ(expected.avoided, 0u);  // no witnesses without stored distances

  EXPECT_EQ(RunWorkload(MakeMTree(8)).answers, expected.answers);
  VpTreeOptions vo;
  vo.witness_capacity = 8;
  vo.leaf_capacity = 8;
  EXPECT_EQ(RunWorkload(VpTree<Traits>(Words(), EditDistanceMetric{}, vo))
                .answers,
            expected.answers);
  GnatOptions go;
  go.witness_capacity = 8;
  EXPECT_EQ(
      RunWorkload(Gnat<Traits>(Words(), EditDistanceMetric{}, go)).answers,
      expected.answers);
}

TEST(WitnessReuse, CapacityZeroLeavesNoWitnessFootprint) {
  // With capacity 0 no prune may ever be attributed to a witness and the
  // avoided counter must stay zero — the pre-witness execution, exactly.
  const auto tree = MakeMTree(0);
  VpTreeOptions vo;
  vo.witness_capacity = 0;
  const VpTree<Traits> vp(Words(), EditDistanceMetric{}, vo);
  GnatOptions go;
  go.witness_capacity = 0;
  const Gnat<Traits> gnat(Words(), EditDistanceMetric{}, go);

  const auto check = [](const auto& index) {
    for (const auto& q : Queries()) {
      QueryTrace trace;
      QueryStats st;
      st.trace = &trace;
      index.RangeSearch(q, 3.0, &st);
      EXPECT_EQ(st.distance_calcs_avoided_by_witness, 0u);
      EXPECT_EQ(trace.prunes_by_reason()[static_cast<size_t>(
                    PruneReason::kWitness)],
                0u);
    }
  };
  check(tree);
  check(vp);
  check(gnat);
}

TEST(WitnessReuse, PersistRoundTripKeepsTheCascade) {
  const std::string path = testing::TempDir() + "/witness_roundtrip.mtree";
  MTreeOptions options;
  options.node_size_bytes = 1024;
  options.witness_capacity = 8;
  const auto before = RunWorkload(MakeMTree(8));
  {
    auto tree = MakeMTree(8);
    ASSERT_TRUE(tree.cascade_installed());
    SaveMTree(tree, path);
  }
  auto reopened = OpenMTree<Traits>(path, EditDistanceMetric{}, options);
  EXPECT_TRUE(reopened.cascade_installed());
  const auto after = RunWorkload(reopened);
  EXPECT_EQ(after.answers, before.answers);
  EXPECT_GT(after.avoided, 0u);  // witnesses work from persisted distances
  EXPECT_TRUE(check::CheckMTree(reopened).ok());
}

TEST(WitnessReuse, LegacyVersionOneFileLoadsWithoutCascade) {
  // A tree saved before InstallWitnessCascade writes tag-0/1 pages; demote
  // its metadata to version 1 (no flags word) to reproduce a pre-cascade
  // file byte-for-byte. It must open, answer identically to the scan, and
  // report the cascade as not installed.
  const std::string path = testing::TempDir() + "/witness_legacy.mtree";
  MTreeOptions options;
  options.node_size_bytes = 1024;
  {
    auto tree =
        MTree<Traits>::BulkLoad(Words(), EditDistanceMetric{}, options);
    ASSERT_FALSE(tree.cascade_installed());
    SaveMTree(tree, path);
  }
  const std::string meta_path = path + ".meta";
  {
    std::FILE* f = std::fopen(meta_path.c_str(), "rb");
    ASSERT_NE(f, nullptr);
    std::fseek(f, 0, SEEK_END);
    const long size = std::ftell(f);
    std::fseek(f, 0, SEEK_SET);
    std::vector<uint8_t> bytes(static_cast<size_t>(size));
    ASSERT_EQ(std::fread(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
    const uint32_t v1 = persist_internal::kMinVersion;
    std::memcpy(bytes.data() + sizeof(uint32_t), &v1, sizeof(v1));
    bytes.resize(2 * sizeof(uint32_t) + persist_internal::kMetaV1Size);
    f = std::fopen(meta_path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
    std::fclose(f);
  }
  auto reopened = OpenMTree<Traits>(path, EditDistanceMetric{}, options);
  EXPECT_FALSE(reopened.cascade_installed());
  const auto got = RunWorkload(reopened);
  EXPECT_EQ(got.avoided, 0u);  // no stored side, no witness bounds
  const auto words = Words();  // LinearScan keeps a reference
  const LinearScan<Traits> scan(words, EditDistanceMetric{});
  EXPECT_EQ(got.answers, RunWorkload(scan).answers);
}

TEST(WitnessReuse, TinyPagesFallBackSafelyWhenArraysWouldOverflow) {
  // At 512-byte pages deep entries cannot always afford their ancestor
  // arrays; InstallWitnessCascade must leave those empty rather than
  // overflow, and queries plus the structural checker must stay clean.
  MTreeOptions options;
  options.node_size_bytes = 512;
  options.witness_capacity = 8;
  auto tree = MTree<Traits>::BulkLoad(Words(), EditDistanceMetric{}, options);
  tree.InstallWitnessCascade();
  const std::string path = testing::TempDir() + "/witness_tiny.mtree";
  SaveMTree(tree, path);
  auto reopened = OpenMTree<Traits>(path, EditDistanceMetric{}, options);
  EXPECT_TRUE(check::CheckMTree(reopened).ok());
  const auto words = Words();  // LinearScan keeps a reference
  const LinearScan<Traits> scan(words, EditDistanceMetric{});
  EXPECT_EQ(RunWorkload(reopened).answers, RunWorkload(scan).answers);
}

}  // namespace
}  // namespace mcm
