// Unit tests for the engine's witness set (engine/witness.h): capacity
// resolution, chain structure and sharing, triangle-inequality lower
// bounds, and the three sanctioned prune-site entry points.

#include "mcm/engine/witness.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <limits>
#include <vector>

namespace mcm {
namespace {

using engine::CountedDistanceWithin;
using engine::GuardedDistanceWithin;
using engine::GuardedExactDistance;
using engine::ResolveWitnessCapacity;
using engine::WitnessChain;
using engine::WitnessInterval;
using engine::WitnessLowerBound;

// Metric over doubles that counts evaluations; DistanceWithin-free so
// BoundedDistance falls back to the plain call.
struct AbsMetric {
  mutable int calls = 0;
  double operator()(double a, double b) const {
    ++calls;
    return std::fabs(a - b);
  }
};

// Metric that additionally keeps the avoided-evaluation ledger the
// engine::internal::WitnessAwareMetric concept looks for.
struct LedgeredMetric {
  mutable int calls = 0;
  mutable int avoided = 0;
  double operator()(double a, double b) const {
    ++calls;
    return std::fabs(a - b);
  }
  void RecordAvoided() const { ++avoided; }
};

TEST(ResolveWitnessCapacityTest, ConfiguredValueWins) {
  EXPECT_EQ(ResolveWitnessCapacity(0), 0);
  EXPECT_EQ(ResolveWitnessCapacity(3), 3);
  EXPECT_EQ(ResolveWitnessCapacity(2000), 1024);  // clamped
}

TEST(ResolveWitnessCapacityTest, MinusOneDefersToEnvironment) {
  unsetenv("MCM_WITNESSES");
  EXPECT_EQ(ResolveWitnessCapacity(-1), engine::kDefaultWitnessCapacity);
  setenv("MCM_WITNESSES", "0", 1);
  EXPECT_EQ(ResolveWitnessCapacity(-1), 0);
  setenv("MCM_WITNESSES", "5", 1);
  EXPECT_EQ(ResolveWitnessCapacity(-1), 5);
  setenv("MCM_WITNESSES", "-7", 1);
  EXPECT_EQ(ResolveWitnessCapacity(-1), 0);  // clamped below
  unsetenv("MCM_WITNESSES");
}

TEST(WitnessIntervalTest, UnknownAndPoint) {
  EXPECT_FALSE(WitnessInterval::Unknown().known());
  const WitnessInterval p = WitnessInterval::Point(2.5);
  EXPECT_TRUE(p.known());
  EXPECT_EQ(p.lo, 2.5);
  EXPECT_EQ(p.hi, 2.5);
}

TEST(WitnessChainTest, ExtendIsNewestFirstAndLimited) {
  WitnessChain chain;
  EXPECT_TRUE(chain.Empty());
  chain = chain.Extend(1, 10.0);
  chain = chain.Extend(2, 20.0);
  chain = chain.Extend(3, 30.0);
  EXPECT_FALSE(chain.Empty());

  std::vector<uint64_t> refs;
  chain.Visit(2, [&](uint64_t ref, double) { refs.push_back(ref); });
  EXPECT_EQ(refs, (std::vector<uint64_t>{3, 2}));

  refs.clear();
  chain.Visit(100, [&](uint64_t ref, double) { refs.push_back(ref); });
  EXPECT_EQ(refs, (std::vector<uint64_t>{3, 2, 1}));
}

TEST(WitnessChainTest, BranchesShareThePrefix) {
  WitnessChain root;
  root = root.Extend(0, 1.0);
  const WitnessChain left = root.Extend(1, 2.0);
  const WitnessChain right = root.Extend(2, 3.0);

  std::vector<uint64_t> refs;
  left.Visit(10, [&](uint64_t ref, double) { refs.push_back(ref); });
  EXPECT_EQ(refs, (std::vector<uint64_t>{1, 0}));
  refs.clear();
  right.Visit(10, [&](uint64_t ref, double) { refs.push_back(ref); });
  EXPECT_EQ(refs, (std::vector<uint64_t>{2, 0}));
}

TEST(WitnessLowerBoundTest, TriangleBoundsFromPointDistances) {
  // Witness 7 at d(Q, w) = 5; stored d(w, o) = 1 -> lb = 4.
  WitnessChain chain;
  chain = chain.Extend(7, 5.0);
  const double lb = WitnessLowerBound(chain, 8, [](uint64_t ref) {
    EXPECT_EQ(ref, 7u);
    return WitnessInterval::Point(1.0);
  });
  EXPECT_DOUBLE_EQ(lb, 4.0);

  // The bound is symmetric: stored 9 with d(Q, w) = 5 also gives 4.
  const double lb2 = WitnessLowerBound(
      chain, 8, [](uint64_t) { return WitnessInterval::Point(9.0); });
  EXPECT_DOUBLE_EQ(lb2, 4.0);
}

TEST(WitnessLowerBoundTest, TakesTheBestWitnessAndSkipsUnknown) {
  WitnessChain chain;
  chain = chain.Extend(0, 10.0);  // stored 2 -> lb 8
  chain = chain.Extend(1, 4.0);   // unknown -> skipped
  chain = chain.Extend(2, 3.0);   // stored 2 -> lb 1
  const auto stored = [](uint64_t ref) {
    return ref == 1 ? WitnessInterval::Unknown() : WitnessInterval::Point(2.0);
  };
  EXPECT_DOUBLE_EQ(WitnessLowerBound(chain, 8, stored), 8.0);
  // Capacity 2 sees only the two newest witnesses (refs 2 and 1).
  EXPECT_DOUBLE_EQ(WitnessLowerBound(chain, 2, stored), 1.0);
  // Intervals weaken the bound: d(w, o) in [0, 9] around d(Q, w)=10 -> 1.
  EXPECT_DOUBLE_EQ(
      WitnessLowerBound(chain, 8,
                        [](uint64_t) {
                          return WitnessInterval{0.0, 9.0};
                        }),
      1.0);
}

TEST(WitnessLowerBoundTest, NeverNegative) {
  WitnessChain chain;
  chain = chain.Extend(0, 1.0);
  EXPECT_DOUBLE_EQ(WitnessLowerBound(
                       chain, 8,
                       [](uint64_t) { return WitnessInterval::Point(1.0); }),
                   0.0);
}

TEST(GuardedDistanceWithinTest, CapacityZeroAlwaysComputes) {
  AbsMetric metric;
  QueryStats st;
  WitnessChain chain;
  chain = chain.Extend(0, 100.0);  // would prove d > bound if consulted
  const auto stored = [](uint64_t) { return WitnessInterval::Point(0.0); };
  const double d =
      GuardedDistanceWithin(chain, 0, stored, metric, 1.0, 2.0, 10.0, &st);
  EXPECT_DOUBLE_EQ(d, 1.0);
  EXPECT_EQ(metric.calls, 1);
  EXPECT_EQ(st.distance_computations, 1u);
  EXPECT_EQ(st.distance_calcs_avoided_by_witness, 0u);
}

TEST(GuardedDistanceWithinTest, AvoidsWhenWitnessProvesOutOfRange) {
  AbsMetric metric;
  QueryStats st;
  WitnessChain chain;
  chain = chain.Extend(0, 100.0);  // lb = 100 > bound = 10
  const auto stored = [](uint64_t) { return WitnessInterval::Point(0.0); };
  const double d =
      GuardedDistanceWithin(chain, 8, stored, metric, 1.0, 2.0, 10.0, &st);
  EXPECT_TRUE(std::isinf(d));
  EXPECT_EQ(metric.calls, 0);
  EXPECT_EQ(st.distance_computations, 0u);
  EXPECT_EQ(st.distance_calcs_avoided_by_witness, 1u);
}

TEST(GuardedDistanceWithinTest, ComputesWhenWitnessesAreInconclusive) {
  AbsMetric metric;
  QueryStats st;
  WitnessChain chain;
  chain = chain.Extend(0, 5.0);  // lb = 0 with stored = 5
  const auto stored = [](uint64_t) { return WitnessInterval::Point(5.0); };
  const double d =
      GuardedDistanceWithin(chain, 8, stored, metric, 1.0, 4.0, 10.0, &st);
  EXPECT_DOUBLE_EQ(d, 3.0);
  EXPECT_EQ(metric.calls, 1);
  EXPECT_EQ(st.distance_computations, 1u);
  EXPECT_EQ(st.distance_calcs_avoided_by_witness, 0u);
}

TEST(GuardedDistanceWithinTest, NotifiesWitnessAwareMetrics) {
  LedgeredMetric metric;
  QueryStats st;
  WitnessChain chain;
  chain = chain.Extend(0, 100.0);
  const auto stored = [](uint64_t) { return WitnessInterval::Point(0.0); };
  GuardedDistanceWithin(chain, 8, stored, metric, 1.0, 2.0, 10.0, &st);
  EXPECT_EQ(metric.avoided, 1);
  EXPECT_EQ(metric.calls, 0);
}

TEST(GuardedExactDistanceTest, ExactWhenNotAvoided) {
  AbsMetric metric;
  QueryStats st;
  WitnessChain chain;  // empty: never avoids
  const auto stored = [](uint64_t) { return WitnessInterval::Unknown(); };
  const double d =
      GuardedExactDistance(chain, 8, stored, metric, 1.0, 9.0, 2.0, &st);
  EXPECT_DOUBLE_EQ(d, 8.0);  // exact even though it exceeds prune_bound
  EXPECT_EQ(st.distance_computations, 1u);
}

TEST(GuardedExactDistanceTest, AvoidsPastThePruneBound) {
  AbsMetric metric;
  QueryStats st;
  WitnessChain chain;
  chain = chain.Extend(0, 50.0);
  const auto stored = [](uint64_t) { return WitnessInterval::Point(1.0); };
  const double d =
      GuardedExactDistance(chain, 8, stored, metric, 1.0, 2.0, 10.0, &st);
  EXPECT_TRUE(std::isinf(d));
  EXPECT_EQ(metric.calls, 0);
  EXPECT_EQ(st.distance_calcs_avoided_by_witness, 1u);
}

TEST(CountedDistanceWithinTest, ChargesExactlyOneComputation) {
  AbsMetric metric;
  QueryStats st;
  const double d = CountedDistanceWithin(metric, 3.0, 7.0, 100.0, &st);
  EXPECT_DOUBLE_EQ(d, 4.0);
  EXPECT_EQ(metric.calls, 1);
  EXPECT_EQ(st.distance_computations, 1u);
  EXPECT_EQ(st.distance_calcs_avoided_by_witness, 0u);
}

}  // namespace
}  // namespace mcm
