// mcm_analyze — whole-program architectural analyzer for the mcm tree.
//
// Where scripts/mcm_lint.py checks one file at a time, this tool builds a
// cross-translation-unit model of the library (include edges, class/mutex
// declarations, per-function lock acquisitions and call sites, env-knob
// reads, distance-evaluation sites) and enforces four project contracts,
// each runnable on its own as a ctest:
//
//   layering    Every `#include "mcm/<dir>/..."` edge must be allowed by
//               the checked-in ARCHITECTURE.manifest, the manifest must be
//               an acyclic DAG, and every source directory must be
//               declared. Generalizes (and retires) the historical
//               check_index_headers.py: index isolation, "engine below the
//               indexes", "check above them" are all just manifest rows.
//
//   lock-order  Builds the per-function mutex-acquisition graph — which
//               capabilities a function acquires, locally and transitively
//               through calls — and flags (a) acquisition cycles between
//               mutexes (potential deadlock once the involved paths run
//               concurrently) and (b) re-entrant acquisition of a
//               non-recursive mutex through a call chain.
//
//   knobs       Every GetEnv{Int,Double,String}("MCM_...") call site must
//               name a knob declared in KNOBS.manifest and documented in
//               README.md, and every declared knob must still have a call
//               site — undocumented runtime switches and stale docs both
//               fail the build.
//
//   accounting  Index code (mtree/vptree/gnat/baseline) computes distances
//               only through the engine's sanctioned entry points
//               (GuardedDistanceWithin / GuardedExactDistance /
//               CountedDistanceWithin, defined in engine/witness.h and
//               nowhere else), never passes a null QueryStats to them, and
//               every direct metric evaluation in a stats-carrying
//               function charges exactly one distance_computations tick.
//
// Usage:
//   mcm_analyze --rule layering|lock-order|knobs|accounting --root <dir>
//   mcm_analyze --all --root <dir>
//   mcm_analyze --selftest <fixtures-dir>
//
// <dir> is a repo-shaped root: src/mcm/** + tools/*.cc are scanned and
// ARCHITECTURE.manifest / KNOBS.manifest / README.md are read from it. The
// self-test runs each rule over a seeded fixture tree (one mini-root per
// rule under <fixtures-dir>) and requires every planted violation — and
// nothing else — to be reported.

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <functional>
#include <iostream>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <vector>

namespace fs = std::filesystem;

namespace {

// ---------------------------------------------------------------------------
// Small utilities
// ---------------------------------------------------------------------------

struct Violation {
  std::string file;  // Repo-relative path.
  int line = 0;
  std::string rule;
  std::string message;

  std::string Format() const {
    std::ostringstream out;
    out << file << ":" << line << ": [" << rule << "] " << message;
    return out.str();
  }
};

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool StartsWith(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

std::vector<std::string> SplitWords(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream in(line);
  std::string word;
  while (in >> word) out.push_back(word);
  return out;
}

// ---------------------------------------------------------------------------
// Lexer: comment/string-aware tokenization with line numbers
// ---------------------------------------------------------------------------

enum class TokKind { kIdent, kNumber, kPunct, kString };

struct Token {
  TokKind kind;
  std::string text;
  int line;
};

struct SourceFile {
  std::string rel_path;    // Relative to the scanned root.
  std::string top_dir;     // "common", "storage", ... or "tools".
  std::vector<Token> tokens;
  // (line, included top-level dir under mcm/, full include path).
  struct Include {
    int line;
    std::string dir;
    std::string path;
  };
  std::vector<Include> includes;
};

// Tokenizes C++: skips comments, collapses string/char literals into one
// kString token, records `#include "mcm/..."` directives, drops every
// other preprocessor line.
void Tokenize(const std::string& text, SourceFile* out) {
  const size_t n = text.size();
  size_t i = 0;
  int line = 1;
  bool at_line_start = true;
  while (i < n) {
    const char c = text[i];
    if (c == '\n') {
      ++line;
      ++i;
      at_line_start = true;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '/') {
      while (i < n && text[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < n && text[i + 1] == '*') {
      i += 2;
      while (i + 1 < n && !(text[i] == '*' && text[i + 1] == '/')) {
        if (text[i] == '\n') ++line;
        ++i;
      }
      i = std::min(n, i + 2);
      continue;
    }
    if (at_line_start && c == '#') {
      // Preprocessor directive: record mcm includes, skip the rest (keep
      // line counting; directives can be continued with backslashes).
      size_t j = i;
      std::string directive;
      while (j < n && text[j] != '\n') {
        if (text[j] == '\\' && j + 1 < n && text[j + 1] == '\n') {
          ++line;
          j += 2;
          continue;
        }
        directive.push_back(text[j]);
        ++j;
      }
      size_t quote = directive.find("include");
      if (quote != std::string::npos) {
        size_t open = directive.find('"', quote);
        if (open != std::string::npos) {
          size_t close = directive.find('"', open + 1);
          if (close != std::string::npos) {
            std::string inc = directive.substr(open + 1, close - open - 1);
            if (StartsWith(inc, "mcm/")) {
              size_t slash = inc.find('/', 4);
              std::string dir = slash == std::string::npos
                                    ? inc.substr(4)
                                    : inc.substr(4, slash - 4);
              out->includes.push_back({line, dir, inc});
            }
          }
        }
      }
      i = j;
      at_line_start = false;
      continue;
    }
    at_line_start = false;
    if (c == '"') {
      // String literal (handles escapes; raw strings are treated as plain
      // strings, good enough for analysis input).
      size_t j = i + 1;
      std::string value;
      while (j < n && text[j] != '"') {
        if (text[j] == '\\' && j + 1 < n) {
          value.push_back(text[j + 1]);
          j += 2;
          continue;
        }
        if (text[j] == '\n') ++line;
        value.push_back(text[j]);
        ++j;
      }
      out->tokens.push_back({TokKind::kString, value, line});
      i = j + 1;
      continue;
    }
    if (c == '\'') {
      size_t j = i + 1;
      while (j < n && text[j] != '\'') {
        if (text[j] == '\\') ++j;
        ++j;
      }
      out->tokens.push_back({TokKind::kString, "'", line});
      i = j + 1;
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '_')) {
        ++j;
      }
      out->tokens.push_back({TokKind::kIdent, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t j = i;
      while (j < n && (std::isalnum(static_cast<unsigned char>(text[j])) ||
                       text[j] == '.' || text[j] == '\'')) {
        ++j;
      }
      out->tokens.push_back({TokKind::kNumber, text.substr(i, j - i), line});
      i = j;
      continue;
    }
    // Two-char operators the scanner cares about; everything else is a
    // single punctuation token.
    if (c == '-' && i + 1 < n && text[i + 1] == '>') {
      out->tokens.push_back({TokKind::kPunct, "->", line});
      i += 2;
      continue;
    }
    if (c == ':' && i + 1 < n && text[i + 1] == ':') {
      out->tokens.push_back({TokKind::kPunct, "::", line});
      i += 2;
      continue;
    }
    if (c == '+' && i + 1 < n && text[i + 1] == '+') {
      out->tokens.push_back({TokKind::kPunct, "++", line});
      i += 2;
      continue;
    }
    out->tokens.push_back({TokKind::kPunct, std::string(1, c), line});
    ++i;
  }
}

// ---------------------------------------------------------------------------
// Scanned tree
// ---------------------------------------------------------------------------

struct Tree {
  fs::path root;
  std::vector<SourceFile> files;      // src/mcm/** and tools/*.cc|h
  std::set<std::string> source_dirs;  // Top-level dirs under src/mcm.
};

bool IsSourceExt(const fs::path& p) {
  return p.extension() == ".h" || p.extension() == ".cc" ||
         p.extension() == ".cpp";
}

// Top-level program directories: scanned (their includes and env-knob
// reads are checked) but not part of the library layer DAG — the manifest
// declares them as wildcard layers.
bool IsProgramDir(const std::string& dir) {
  return dir == "tools" || dir == "bench" || dir == "examples";
}

std::optional<Tree> ScanTree(const fs::path& root) {
  Tree tree;
  tree.root = root;
  const fs::path src = root / "src" / "mcm";
  if (!fs::is_directory(src)) {
    std::cerr << "error: " << src.string() << " is not a directory\n";
    return std::nullopt;
  }
  std::vector<fs::path> paths;
  for (const auto& entry : fs::recursive_directory_iterator(src)) {
    if (entry.is_regular_file() && IsSourceExt(entry.path())) {
      paths.push_back(entry.path());
    }
  }
  for (const char* program_dir : {"tools", "bench", "examples"}) {
    const fs::path dir = root / program_dir;
    if (!fs::is_directory(dir)) continue;
    for (const auto& entry : fs::directory_iterator(dir)) {
      if (entry.is_regular_file() && IsSourceExt(entry.path())) {
        paths.push_back(entry.path());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  for (const auto& path : paths) {
    SourceFile sf;
    sf.rel_path = fs::relative(path, root).generic_string();
    const fs::path rel = fs::relative(path, root);
    auto it = rel.begin();
    if (IsProgramDir(it->generic_string())) {
      sf.top_dir = it->generic_string();
    } else {
      // src/mcm/<dir>/...
      ++it;  // mcm
      ++it;  // <dir>
      sf.top_dir = it->generic_string();
      // A file directly under src/mcm would make *it the filename; the
      // tree never does that, but guard against extension-looking dirs.
      tree.source_dirs.insert(sf.top_dir);
    }
    Tokenize(ReadFile(path), &sf);
    tree.files.push_back(std::move(sf));
  }
  return tree;
}

// ---------------------------------------------------------------------------
// Rule: layering (ARCHITECTURE.manifest include-layer DAG)
// ---------------------------------------------------------------------------

struct LayerManifest {
  // layer -> allowed dependency dirs. A "*" entry means "anything".
  std::map<std::string, std::set<std::string>> allowed;
  std::set<std::string> wildcard;  // Layers allowed to include anything.
};

std::optional<LayerManifest> ParseLayerManifest(const fs::path& path,
                                                std::vector<Violation>* out) {
  std::ifstream in(path);
  if (!in) {
    out->push_back({path.filename().string(), 0, "layering",
                    "missing ARCHITECTURE.manifest (declare the include "
                    "DAG: `layer <dir> = <allowed deps...>`)"});
    return std::nullopt;
  }
  LayerManifest manifest;
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const size_t hash = line.find('#');
    if (hash != std::string::npos) line = line.substr(0, hash);
    std::vector<std::string> words = SplitWords(line);
    if (words.empty()) continue;
    if (words[0] != "layer" || words.size() < 3 || words[2] != "=") {
      out->push_back({path.filename().string(), lineno, "layering",
                      "unparsable manifest line (expected `layer <dir> = "
                      "[deps...]`): " + line});
      continue;
    }
    const std::string& name = words[1];
    auto& deps = manifest.allowed[name];
    for (size_t i = 3; i < words.size(); ++i) {
      if (words[i] == "*") {
        manifest.wildcard.insert(name);
      } else {
        deps.insert(words[i]);
      }
    }
  }
  return manifest;
}

// Depth-first cycle check over the declared layer DAG.
bool ManifestHasCycle(const LayerManifest& m, std::string* cycle_desc) {
  std::map<std::string, int> state;  // 0 = new, 1 = on stack, 2 = done.
  std::vector<std::string> stack;
  std::function<bool(const std::string&)> visit =
      [&](const std::string& layer) -> bool {
    state[layer] = 1;
    stack.push_back(layer);
    auto it = m.allowed.find(layer);
    if (it != m.allowed.end()) {
      for (const auto& dep : it->second) {
        if (dep == layer) continue;  // Self-deps are just redundant.
        if (m.allowed.count(dep) == 0) continue;
        if (state[dep] == 1) {
          std::ostringstream out;
          for (const auto& s : stack) out << s << " -> ";
          out << dep;
          *cycle_desc = out.str();
          return true;
        }
        if (state[dep] == 0 && visit(dep)) return true;
      }
    }
    state[layer] = 2;
    stack.pop_back();
    return false;
  };
  for (const auto& [layer, deps] : m.allowed) {
    (void)deps;
    if (state[layer] == 0 && visit(layer)) return true;
  }
  return false;
}

std::vector<Violation> CheckLayering(const Tree& tree) {
  std::vector<Violation> out;
  auto manifest =
      ParseLayerManifest(tree.root / "ARCHITECTURE.manifest", &out);
  if (!manifest) return out;

  std::string cycle;
  if (ManifestHasCycle(*manifest, &cycle)) {
    out.push_back({"ARCHITECTURE.manifest", 0, "layering",
                   "declared layer graph has a cycle: " + cycle});
  }
  for (const auto& dir : tree.source_dirs) {
    if (manifest->allowed.count(dir) == 0) {
      out.push_back({"src/mcm/" + dir, 0, "layering",
                     "directory is not declared in ARCHITECTURE.manifest "
                     "(add a `layer " + dir + " = ...` row)"});
    }
  }
  for (const auto& [layer, deps] : manifest->allowed) {
    if (IsProgramDir(layer)) continue;
    if (tree.source_dirs.count(layer) == 0) {
      out.push_back({"ARCHITECTURE.manifest", 0, "layering",
                     "declared layer `" + layer +
                         "` has no directory src/mcm/" + layer +
                         " (stale manifest row)"});
    }
    for (const auto& dep : deps) {
      if (!IsProgramDir(dep) && tree.source_dirs.count(dep) == 0) {
        out.push_back({"ARCHITECTURE.manifest", 0, "layering",
                       "layer `" + layer + "` allows dependency on `" + dep +
                           "`, which is not a source directory"});
      }
    }
  }
  for (const auto& sf : tree.files) {
    const bool wildcard = manifest->wildcard.count(sf.top_dir) > 0;
    auto it = manifest->allowed.find(sf.top_dir);
    for (const auto& inc : sf.includes) {
      if (inc.dir == sf.top_dir) continue;
      if (wildcard) continue;
      if (it == manifest->allowed.end() || it->second.count(inc.dir) == 0) {
        out.push_back(
            {sf.rel_path, inc.line, "layering",
             sf.top_dir + "/ may not include mcm/" + inc.dir +
                 "/ (#include \"" + inc.path +
                 "\"): not an allowed dependency in ARCHITECTURE.manifest"});
      }
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule: knobs (KNOBS.manifest + README registry of MCM_* env switches)
// ---------------------------------------------------------------------------

struct KnobSite {
  std::string file;
  int line;
  std::string knob;
};

std::vector<KnobSite> FindKnobReads(const Tree& tree) {
  std::vector<KnobSite> sites;
  for (const auto& sf : tree.files) {
    const auto& toks = sf.tokens;
    for (size_t i = 0; i + 2 < toks.size(); ++i) {
      if (toks[i].kind != TokKind::kIdent) continue;
      const std::string& name = toks[i].text;
      if (name != "GetEnvInt" && name != "GetEnvDouble" &&
          name != "GetEnvString") {
        continue;
      }
      if (toks[i + 1].text != "(") continue;
      if (toks[i + 2].kind == TokKind::kString &&
          StartsWith(toks[i + 2].text, "MCM_")) {
        sites.push_back({sf.rel_path, toks[i + 2].line, toks[i + 2].text});
      }
    }
  }
  return sites;
}

std::vector<Violation> CheckKnobs(const Tree& tree) {
  std::vector<Violation> out;
  // Parse KNOBS.manifest: first word of each non-comment line is a knob.
  std::map<std::string, int> declared;  // knob -> manifest line.
  {
    std::ifstream in(tree.root / "KNOBS.manifest");
    if (!in) {
      out.push_back({"KNOBS.manifest", 0, "knobs",
                     "missing KNOBS.manifest (declare every MCM_* "
                     "environment knob, one per line)"});
      return out;
    }
    std::string line;
    int lineno = 0;
    while (std::getline(in, line)) {
      ++lineno;
      const size_t hash = line.find('#');
      if (hash != std::string::npos) line = line.substr(0, hash);
      std::vector<std::string> words = SplitWords(line);
      if (words.empty()) continue;
      if (!StartsWith(words[0], "MCM_")) {
        out.push_back({"KNOBS.manifest", lineno, "knobs",
                       "knob names must start with MCM_: " + words[0]});
        continue;
      }
      declared.emplace(words[0], lineno);
    }
  }
  const std::string readme = ReadFile(tree.root / "README.md");
  if (readme.empty()) {
    out.push_back({"README.md", 0, "knobs",
                   "missing README.md (the knob table lives there)"});
  }

  const std::vector<KnobSite> sites = FindKnobReads(tree);
  std::set<std::string> used;
  for (const auto& site : sites) {
    used.insert(site.knob);
    if (declared.count(site.knob) == 0) {
      out.push_back({site.file, site.line, "knobs",
                     "undeclared env knob " + site.knob +
                         ": add it to KNOBS.manifest and to the README "
                         "knob table (no undocumented runtime switches)"});
    }
  }
  for (const auto& [knob, lineno] : declared) {
    if (used.count(knob) == 0) {
      out.push_back({"KNOBS.manifest", lineno, "knobs",
                     "stale knob " + knob +
                         ": declared but no GetEnv* call site reads it"});
    }
    // Documented = the knob name appears anywhere in the README (the
    // table renders it in backticks, but any mention satisfies the rule).
    if (!readme.empty() && readme.find(knob) == std::string::npos) {
      out.push_back({"KNOBS.manifest", lineno, "knobs",
                     "undocumented knob " + knob +
                         ": declared in the manifest but absent from "
                         "README.md"});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Scope-aware function scanner, shared by lock-order and accounting
// ---------------------------------------------------------------------------

const std::set<std::string>& CppKeywords() {
  static const std::set<std::string> kw = {
      "if",       "else",    "for",      "while",    "do",     "switch",
      "case",     "return",  "break",    "continue", "sizeof", "new",
      "delete",   "throw",   "try",      "catch",    "static", "const",
      "constexpr", "mutable", "virtual", "override", "final",  "inline",
      "template", "typename", "class",   "struct",   "enum",   "namespace",
      "using",    "public",  "private",  "protected", "operator", "default",
      "noexcept", "explicit", "friend",  "auto",     "void",   "bool",
      "int",      "char",    "double",   "float",    "long",   "short",
      "unsigned", "signed",  "goto",     "requires", "concept", "typedef",
      "static_cast", "dynamic_cast", "reinterpret_cast", "const_cast",
      "static_assert", "decltype", "co_return", "co_await", "co_yield",
      "alignof",  "alignas", "this",     "nullptr",  "true",   "false",
  };
  return kw;
}

// Calls with these names are never treated as calls into the project
// function database: they collide with STL container/iterator methods and
// would otherwise attach false transitive lock acquisitions.
const std::set<std::string>& CallDenyList() {
  static const std::set<std::string> deny = {
      "size",  "empty", "clear",  "begin",  "end",     "find",  "erase",
      "insert", "push_back", "pop_back", "emplace", "emplace_back", "count",
      "at",    "front", "back",   "data",   "reserve", "resize", "swap",
      "get",   "reset", "release", "lock",  "unlock",  "try_lock", "c_str",
      "str",   "load",  "store",  "exchange", "fetch_add", "fetch_sub",
      "push_front", "pop_front", "splice", "assign", "substr", "append",
  };
  return deny;
}

struct MutexDecl {
  std::string qualified;  // e.g. "BufferPool::Shard::mu".
  std::string member;     // e.g. "mu".
  std::string owner;      // e.g. "BufferPool::Shard".
};

struct CallSite {
  std::string callee;  // Unqualified name.
  int line;
  std::vector<std::string> held;  // Qualified mutex ids held at the call.
};

struct AcquireSite {
  std::string mutex_id;  // Qualified.
  int line;
  std::vector<std::string> held_before;  // Held when this was acquired.
};

struct FunctionInfo {
  std::string qualified;  // "Class::Name" or "Name".
  std::string name;       // Last component.
  std::string file;
  int line = 0;
  std::vector<std::string> enclosing_classes;  // Innermost last.
  std::vector<AcquireSite> acquires;
  std::vector<CallSite> calls;
  // --- accounting facts ---
  bool has_stats_param = false;    // Takes a QueryStats* parameter.
  int direct_metric_calls = 0;     // metric_(...) / metric()(...) sites.
  int first_metric_line = 0;
  int charge_increments = 0;       // ++st->distance_computations sites.
  std::vector<std::pair<int, std::string>> guarded_calls;  // line, last arg.
  std::vector<std::pair<int, std::string>> banned_calls;   // line, name.
  bool defines_entry_point = false;
  int entry_point_line = 0;
};

struct ProgramModel {
  std::vector<MutexDecl> mutexes;
  std::vector<FunctionInfo> functions;
};

bool IsMutexType(const std::vector<Token>& toks, size_t i, size_t* type_len) {
  // Recognizes: Mutex, mcm::Mutex, std::mutex, std::shared_mutex at
  // position i; sets *type_len to the token count consumed.
  if (toks[i].text == "Mutex") {
    *type_len = 1;
    return true;
  }
  if (i + 2 < toks.size() && toks[i].text == "mcm" &&
      toks[i + 1].text == "::" && toks[i + 2].text == "Mutex") {
    *type_len = 3;
    return true;
  }
  if (i + 2 < toks.size() && toks[i].text == "std" &&
      toks[i + 1].text == "::" &&
      (toks[i + 2].text == "mutex" || toks[i + 2].text == "shared_mutex")) {
    *type_len = 3;
    return true;
  }
  return false;
}

// Extracts the trailing member of a lock-expression token run, e.g.
// ["shard", ".", "mu"] -> "mu"; ["&", "mu_"] -> "mu_".
std::string TrailingMember(const std::vector<Token>& expr) {
  for (auto it = expr.rbegin(); it != expr.rend(); ++it) {
    if (it->kind == TokKind::kIdent) return it->text;
  }
  return "";
}

// The model builder walks each file's token stream once, tracking
// namespace/class scopes and function bodies by brace depth.
class ModelBuilder {
 public:
  explicit ModelBuilder(ProgramModel* model) : model_(model) {}

  // Declarations must be visible across the whole program before any body
  // is scanned (a .cc sorts before its .h, and lock expressions resolve
  // against every class's mutex members), hence the two phases.
  void AddDeclarations(const SourceFile& sf) {
    if (SkipFile(sf)) return;
    file_ = &sf;
    CollectMutexDecls();
  }

  void AddBodies(const SourceFile& sf) {
    if (SkipFile(sf)) return;
    file_ = &sf;
    CollectFunctions();
  }

 private:
  // common/mutex.h defines the locking primitives themselves; modeling
  // its internals would alias every lock through Mutex::mu_.
  static bool SkipFile(const SourceFile& sf) {
    return sf.rel_path.find("common/mutex.h") != std::string::npos;
  }

  struct Scope {
    enum Kind { kNamespace, kClass, kFunction, kBlock } kind;
    std::string name;
  };

  // Pass 1: class-scope mutex members. Tracks class nesting via brace
  // scanning; a mutex member is `[mutable] <mutex-type> <ident> ;`.
  void CollectMutexDecls() {
    const auto& toks = file_->tokens;
    std::vector<std::pair<std::string, int>> classes;  // name, depth-at-open
    int depth = 0;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.text == "{") {
        ++depth;
        continue;
      }
      if (t.text == "}") {
        --depth;
        while (!classes.empty() && classes.back().second > depth) {
          classes.pop_back();
        }
        continue;
      }
      if ((t.text == "class" || t.text == "struct") && t.kind ==
              TokKind::kIdent && i + 1 < toks.size() &&
          toks[i + 1].kind == TokKind::kIdent) {
        // Find the '{' (skip base clauses); bail at ';' (fwd declaration).
        size_t j = i + 2;
        int angle = 0;
        while (j < toks.size()) {
          if (toks[j].text == "<") ++angle;
          if (toks[j].text == ">") --angle;
          if (angle == 0 && (toks[j].text == "{" || toks[j].text == ";")) {
            break;
          }
          ++j;
        }
        if (j < toks.size() && toks[j].text == "{") {
          classes.push_back({toks[i + 1].text, depth + 1});
        }
        continue;
      }
      size_t type_len = 0;
      if (!classes.empty() && t.kind == TokKind::kIdent &&
          IsMutexType(toks, i, &type_len)) {
        const size_t name_at = i + type_len;
        if (name_at < toks.size() &&
            toks[name_at].kind == TokKind::kIdent &&
            name_at + 1 < toks.size() && toks[name_at + 1].text == ";") {
          std::string owner;
          for (const auto& [cls, d] : classes) {
            (void)d;
            if (!owner.empty()) owner += "::";
            owner += cls;
          }
          model_->mutexes.push_back(
              {owner + "::" + toks[name_at].text, toks[name_at].text,
               owner});
          i = name_at + 1;
        }
      }
    }
  }

  // Pass 2: function bodies with lock acquisitions, calls, accounting.
  void CollectFunctions() {
    const auto& toks = file_->tokens;
    std::vector<Scope> scopes;
    for (size_t i = 0; i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.text == "namespace" && i + 1 < toks.size()) {
        if (toks[i + 1].kind == TokKind::kIdent &&
            i + 2 < toks.size() && toks[i + 2].text == "{") {
          scopes.push_back({Scope::kNamespace, toks[i + 1].text});
          i += 2;
        } else if (toks[i + 1].text == "{") {  // anonymous
          scopes.push_back({Scope::kNamespace, ""});
          i += 1;
        }
        continue;
      }
      if ((t.text == "class" || t.text == "struct") &&
          i + 1 < toks.size() && toks[i + 1].kind == TokKind::kIdent) {
        size_t j = i + 2;
        int angle = 0;
        while (j < toks.size()) {
          if (toks[j].text == "<") ++angle;
          if (toks[j].text == ">") --angle;
          if (angle == 0 && (toks[j].text == "{" || toks[j].text == ";")) {
            break;
          }
          ++j;
        }
        if (j < toks.size() && toks[j].text == "{") {
          scopes.push_back({Scope::kClass, toks[i + 1].text});
          i = j;
        }
        continue;
      }
      if (t.text == "{") {
        scopes.push_back({Scope::kBlock, ""});
        continue;
      }
      if (t.text == "}") {
        if (!scopes.empty()) scopes.pop_back();
        continue;
      }
      // Function definition: ident '(' ... ')' [qualifiers] '{' at
      // namespace/class scope.
      if (t.kind == TokKind::kIdent && i + 1 < toks.size() &&
          toks[i + 1].text == "(" && AtDeclScope(scopes) &&
          CppKeywords().count(t.text) == 0) {
        size_t close = MatchParen(toks, i + 1);
        if (close == 0) continue;
        size_t body = close + 1;
        int angle = 0;
        bool is_def = false;
        while (body < toks.size()) {
          const std::string& w = toks[body].text;
          if (w == "{" && angle == 0) {
            is_def = true;
            break;
          }
          if (w == ";" || w == ",") break;  // Declaration / initializer.
          if (w == "<") ++angle;
          if (w == ">") --angle;
          if (w == ":" && angle == 0) break;  // Constructor init list — the
          // members initialized there never need lock tracking (ctors are
          // single-threaded); skip to the body brace.
          ++body;
        }
        if (!is_def && body < toks.size() && toks[body].text == ":") {
          // Constructor initializer list: scan forward to the body '{'.
          size_t k = body + 1;
          int brace_guard = 0;
          while (k < toks.size()) {
            if (toks[k].text == "(") {
              k = MatchParen(toks, k);
              if (k == 0) break;
            } else if (toks[k].text == "{" && brace_guard == 0) {
              // Either a brace-initializer or the body. A body brace is
              // followed by statements; treat the LAST top-level '{' as
              // the body by checking what follows the matching '}'.
              size_t close_b = MatchBrace(toks, k);
              if (close_b == 0) break;
              if (close_b + 1 >= toks.size() ||
                  (toks[close_b + 1].text != "," &&
                   toks[close_b + 1].text != "{")) {
                // Heuristic: initializer braces are followed by ',' or
                // another initializer; the body brace ends the function.
                body = k;
                is_def = true;
                break;
              }
              k = close_b;
            }
            ++k;
          }
        }
        if (!is_def) continue;
        // Qualified name: collect leading A:: B:: chain before the name.
        // Destructors get a distinct "~Name" so call sites naming the
        // constructor never link to the destructor's acquisitions (guard
        // temporaries destruct in the caller, after locks are released).
        const bool is_dtor = i >= 1 && toks[i - 1].text == "~";
        std::string qualified = (is_dtor ? "~" : "") + t.text;
        {
          size_t b = is_dtor ? i - 1 : i;
          while (b >= 2 && toks[b - 1].text == "::" &&
                 toks[b - 2].kind == TokKind::kIdent) {
            qualified = toks[b - 2].text + "::" + qualified;
            b -= 2;
          }
        }
        FunctionInfo fn;
        fn.name = (is_dtor ? "~" : "") + t.text;
        fn.file = file_->rel_path;
        fn.line = t.line;
        for (const auto& s : scopes) {
          if (s.kind == Scope::kClass) fn.enclosing_classes.push_back(s.name);
        }
        if (!fn.enclosing_classes.empty() &&
            qualified.find("::") == std::string::npos) {
          std::string prefix;
          for (const auto& c : fn.enclosing_classes) prefix += c + "::";
          qualified = prefix + qualified;
        }
        fn.qualified = qualified;
        // Stats parameter?
        for (size_t p = i + 2; p < close; ++p) {
          if (toks[p].text == "QueryStats") {
            fn.has_stats_param = true;
            break;
          }
        }
        size_t end = MatchBrace(toks, body);
        if (end == 0) end = toks.size() - 1;
        ScanBody(toks, body, end, &fn);
        model_->functions.push_back(std::move(fn));
        i = end;
        continue;
      }
    }
  }

  static bool AtDeclScope(const std::vector<Scope>& scopes) {
    for (auto it = scopes.rbegin(); it != scopes.rend(); ++it) {
      if (it->kind == Scope::kFunction || it->kind == Scope::kBlock) {
        return false;
      }
    }
    return true;
  }

  static size_t MatchParen(const std::vector<Token>& toks, size_t open) {
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
      if (toks[i].text == "(") ++depth;
      if (toks[i].text == ")") {
        if (--depth == 0) return i;
      }
    }
    return 0;
  }

  static size_t MatchBrace(const std::vector<Token>& toks, size_t open) {
    int depth = 0;
    for (size_t i = open; i < toks.size(); ++i) {
      if (toks[i].text == "{") ++depth;
      if (toks[i].text == "}") {
        if (--depth == 0) return i;
      }
    }
    return 0;
  }

  // Resolves a lock expression to qualified mutex ids. Preference order:
  // a mutex member of the innermost enclosing class (or one of its nested
  // structs), else a unique global member-name match, else every match.
  std::vector<std::string> ResolveMutex(const std::string& member,
                                        const FunctionInfo& fn) const {
    std::vector<const MutexDecl*> candidates;
    for (const auto& m : model_->mutexes) {
      if (m.member == member) candidates.push_back(&m);
    }
    if (candidates.empty()) return {};
    if (candidates.size() == 1) return {candidates[0]->qualified};
    // Owner-class hint: the innermost enclosing class for in-class bodies,
    // else the A::B prefix of an out-of-class definition like A::B::Fn.
    std::string cls;
    if (!fn.enclosing_classes.empty()) {
      cls = fn.enclosing_classes.back();
    } else {
      const size_t sep = fn.qualified.rfind("::");
      if (sep != std::string::npos) {
        const size_t prev = fn.qualified.rfind("::", sep - 1);
        cls = prev == std::string::npos
                  ? fn.qualified.substr(0, sep)
                  : fn.qualified.substr(prev + 2, sep - prev - 2);
      }
    }
    if (!cls.empty()) {
      std::vector<std::string> scoped;
      for (const auto* m : candidates) {
        // Owner equals the class or is nested inside it
        // ("BufferPool::Shard" under enclosing class "BufferPool").
        if (m->owner == cls || StartsWith(m->owner, cls + "::") ||
            m->owner.find("::" + cls + "::") != std::string::npos) {
          scoped.push_back(m->qualified);
        }
      }
      if (!scoped.empty()) return scoped;
    }
    std::vector<std::string> all;
    for (const auto* m : candidates) all.push_back(m->qualified);
    return all;
  }

  void ScanBody(const std::vector<Token>& toks, size_t body, size_t end,
                FunctionInfo* fn) {
    struct Held {
      std::string id;
      int depth;      // Brace depth to auto-release at (0 = manual).
      int line;
    };
    std::vector<Held> held;
    int depth = 0;  // Relative depth inside the body.
    auto held_ids = [&held]() {
      std::vector<std::string> ids;
      for (const auto& h : held) ids.push_back(h.id);
      std::sort(ids.begin(), ids.end());
      ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
      return ids;
    };
    auto acquire = [&](const std::vector<std::string>& ids, int at_depth,
                       int line) {
      for (const auto& id : ids) {
        fn->acquires.push_back({id, line, held_ids()});
        held.push_back({id, at_depth, line});
      }
    };

    for (size_t i = body; i <= end && i < toks.size(); ++i) {
      const Token& t = toks[i];
      if (t.text == "{") {
        ++depth;
        continue;
      }
      if (t.text == "}") {
        held.erase(std::remove_if(held.begin(), held.end(),
                                  [&](const Held& h) {
                                    return h.depth == depth;
                                  }),
                   held.end());
        --depth;
        continue;
      }
      if (t.kind != TokKind::kIdent) {
        // ++st->distance_computations / ++stats.distance_computations.
        if (t.text == "++" && i + 1 < toks.size()) {
          size_t j = i + 1;
          // Walk the ident/./->/:: chain.
          std::vector<std::string> chain;
          while (j < toks.size() &&
                 (toks[j].kind == TokKind::kIdent || toks[j].text == "." ||
                  toks[j].text == "->" || toks[j].text == "::")) {
            if (toks[j].kind == TokKind::kIdent) chain.push_back(toks[j].text);
            ++j;
          }
          if (!chain.empty() && chain.back() == "distance_computations") {
            ++fn->charge_increments;
          }
        }
        continue;
      }

      // RAII guards: MutexLock l(&mu); std::lock_guard<..> l(mu); ...
      if (t.text == "MutexLock" || t.text == "lock_guard" ||
          t.text == "unique_lock" || t.text == "scoped_lock") {
        size_t j = i + 1;
        int angle = 0;
        // Skip template args and the guard's variable name.
        while (j < toks.size() && toks[j].text != "(") {
          if (toks[j].text == "<") ++angle;
          if (toks[j].text == ">") --angle;
          if (toks[j].text == ";") break;
          ++j;
        }
        if (j >= toks.size() || toks[j].text != "(") continue;
        size_t close = MatchParen(toks, j);
        if (close == 0) continue;
        // Split top-level args; each may be a mutex expression.
        std::vector<std::vector<Token>> args;
        args.emplace_back();
        int pd = 0, ad = 0;
        for (size_t k = j + 1; k < close; ++k) {
          if (toks[k].text == "(") ++pd;
          if (toks[k].text == ")") --pd;
          if (toks[k].text == "<") ++ad;
          if (toks[k].text == ">") --ad;
          if (toks[k].text == "," && pd == 0 && ad == 0) {
            args.emplace_back();
            continue;
          }
          args.back().push_back(toks[k]);
        }
        bool adopted = false;
        for (const auto& arg : args) {
          for (const auto& tok : arg) {
            if (tok.text == "adopt_lock" || tok.text == "defer_lock") {
              adopted = true;
            }
          }
        }
        if (!adopted) {
          for (const auto& arg : args) {
            const std::string member = TrailingMember(arg);
            if (member.empty()) continue;
            const auto ids = ResolveMutex(member, *fn);
            if (!ids.empty()) acquire(ids, depth, t.line);
          }
        }
        i = close;
        continue;
      }

      // Manual mu.Lock() / mu.Unlock(): held until Unlock or body end.
      if ((t.text == "Lock" || t.text == "Unlock") && i + 1 < toks.size() &&
          toks[i + 1].text == "(" && i >= 2 &&
          (toks[i - 1].text == "." || toks[i - 1].text == "->") &&
          toks[i - 2].kind == TokKind::kIdent) {
        const auto ids = ResolveMutex(toks[i - 2].text, *fn);
        if (!ids.empty()) {
          if (t.text == "Lock") {
            acquire(ids, /*at_depth=*/0, t.line);
          } else {
            held.erase(std::remove_if(held.begin(), held.end(),
                                      [&](const Held& h) {
                                        return std::find(ids.begin(),
                                                         ids.end(), h.id) !=
                                               ids.end();
                                      }),
                       held.end());
          }
        }
        i += 1;
        continue;
      }

      // Accounting facts.
      if (t.text == "metric_" || t.text == "metric") {
        if (i + 1 < toks.size() && toks[i + 1].text == "(" &&
            (i == 0 || (toks[i - 1].text != "." && toks[i - 1].text != "->" &&
                        toks[i - 1].text != "::"))) {
          ++fn->direct_metric_calls;
          if (fn->first_metric_line == 0) fn->first_metric_line = t.line;
        }
      }
      if (t.text == "GuardedDistanceWithin" ||
          t.text == "GuardedExactDistance" ||
          t.text == "CountedDistanceWithin") {
        if (i + 1 < toks.size() && toks[i + 1].text == "(") {
          size_t close = MatchParen(toks, i + 1);
          if (close != 0) {
            // Last top-level argument (the QueryStats*).
            int pd = 0, ad = 0;
            size_t last_start = i + 2;
            for (size_t k = i + 2; k < close; ++k) {
              if (toks[k].text == "(" || toks[k].text == "[") ++pd;
              if (toks[k].text == ")" || toks[k].text == "]") --pd;
              if (toks[k].text == "<") ++ad;
              if (toks[k].text == ">") --ad;
              if (toks[k].text == "," && pd == 0 && ad == 0) {
                last_start = k + 1;
              }
            }
            std::string last_arg;
            for (size_t k = last_start; k < close; ++k) {
              if (!last_arg.empty()) last_arg += " ";
              last_arg += toks[k].text;
            }
            fn->guarded_calls.push_back({t.line, last_arg});
          }
        }
      }
      if (t.text == "BoundedDistance" || t.text == "DistanceWithin") {
        if (i + 1 < toks.size() && toks[i + 1].text == "(") {
          fn->banned_calls.push_back({t.line, t.text});
        }
      }

      // Generic call site.
      if (i + 1 < toks.size() && toks[i + 1].text == "(" &&
          CppKeywords().count(t.text) == 0 &&
          CallDenyList().count(t.text) == 0) {
        fn->calls.push_back({t.text, t.line, held_ids()});
      }
    }
  }

  ProgramModel* model_;
  const SourceFile* file_ = nullptr;
};

ProgramModel BuildModel(const Tree& tree) {
  ProgramModel model;
  ModelBuilder builder(&model);
  for (const auto& sf : tree.files) builder.AddDeclarations(sf);
  for (const auto& sf : tree.files) builder.AddBodies(sf);
  return model;
}

// Debug aid (--dump): prints the discovered concurrency model so a human
// can confirm the analysis is not vacuously passing.
void DumpModel(const Tree& tree) {
  ProgramModel model = BuildModel(tree);
  std::cout << "mutexes (" << model.mutexes.size() << "):\n";
  for (const auto& m : model.mutexes) {
    std::cout << "  " << m.qualified << "\n";
  }
  std::cout << "functions (" << model.functions.size() << "):\n";
  for (const auto& fn : model.functions) {
    if (fn.acquires.empty()) continue;
    std::cout << "  " << fn.qualified << " (" << fn.file << ":" << fn.line
              << ")\n";
    for (const auto& a : fn.acquires) {
      std::cout << "    acquires " << a.mutex_id;
      if (!a.held_before.empty()) {
        std::cout << " while holding";
        for (const auto& h : a.held_before) std::cout << " " << h;
      }
      std::cout << " (line " << a.line << ")\n";
    }
    for (const auto& c : fn.calls) {
      if (c.held.empty()) continue;
      std::cout << "    calls " << c.callee << "() holding";
      for (const auto& h : c.held) std::cout << " " << h;
      std::cout << " (line " << c.line << ")\n";
    }
  }
}

// ---------------------------------------------------------------------------
// Rule: lock-order (cycles in the cross-TU mutex-acquisition graph)
// ---------------------------------------------------------------------------

std::vector<Violation> CheckLockOrder(const Tree& tree) {
  std::vector<Violation> out;
  ProgramModel model = BuildModel(tree);

  // Index functions by unqualified name (cross-TU linking is by name; the
  // deny list already removed STL-colliding names at call sites).
  std::map<std::string, std::vector<const FunctionInfo*>> by_name;
  for (const auto& fn : model.functions) {
    by_name[fn.name].push_back(&fn);
  }

  // Transitive acquisition sets, memoized; cycles in the *call* graph are
  // broken by the in-progress marker (their fixpoint is the union already
  // accumulated).
  std::map<const FunctionInfo*, std::set<std::string>> memo;
  std::set<const FunctionInfo*> in_progress;
  std::function<const std::set<std::string>&(const FunctionInfo*)> acq =
      [&](const FunctionInfo* fn) -> const std::set<std::string>& {
    auto it = memo.find(fn);
    if (it != memo.end()) return it->second;
    auto& result = memo[fn];
    if (in_progress.count(fn)) return result;
    in_progress.insert(fn);
    for (const auto& a : fn->acquires) result.insert(a.mutex_id);
    for (const auto& call : fn->calls) {
      auto callees = by_name.find(call.callee);
      if (callees == by_name.end()) continue;
      for (const auto* callee : callees->second) {
        if (callee == fn) continue;
        const auto& sub = acq(callee);
        result.insert(sub.begin(), sub.end());
      }
    }
    in_progress.erase(fn);
    return result;
  };

  // Order edges: held -> acquired, from local nesting and from calls made
  // while holding.
  struct Edge {
    std::string file;
    int line;
    std::string via;  // Description of how the edge arises.
  };
  std::map<std::pair<std::string, std::string>, Edge> edges;
  auto add_edge = [&](const std::string& from, const std::string& to,
                      const std::string& file, int line,
                      const std::string& via) {
    edges.emplace(std::make_pair(from, to), Edge{file, line, via});
  };

  for (const auto& fn : model.functions) {
    for (const auto& a : fn.acquires) {
      for (const auto& h : a.held_before) {
        if (h == a.mutex_id) {
          out.push_back({fn.file, a.line, "lock-order",
                         "recursive acquisition of " + a.mutex_id + " in " +
                             fn.qualified +
                             " (already held; std::mutex self-deadlocks)"});
          continue;
        }
        add_edge(h, a.mutex_id, fn.file, a.line,
                 fn.qualified + " acquires " + a.mutex_id + " while holding " +
                     h);
      }
    }
    for (const auto& call : fn.calls) {
      if (call.held.empty()) continue;
      auto callees = by_name.find(call.callee);
      if (callees == by_name.end()) continue;
      std::set<std::string> callee_acq;
      for (const auto* callee : callees->second) {
        const auto& sub = acq(callee);
        callee_acq.insert(sub.begin(), sub.end());
      }
      for (const auto& h : call.held) {
        for (const auto& m : callee_acq) {
          if (m == h) {
            out.push_back(
                {fn.file, call.line, "lock-order",
                 "recursive acquisition of " + h + ": " + fn.qualified +
                     " holds it and calls " + call.callee +
                     "(), which (transitively) acquires it again"});
            continue;
          }
          add_edge(h, m, fn.file, call.line,
                   fn.qualified + " holds " + h + " and calls " +
                       call.callee + "() which acquires " + m);
        }
      }
    }
  }

  // Cycle detection over the mutex-order graph.
  std::map<std::string, std::vector<std::string>> graph;
  for (const auto& [key, edge] : edges) {
    (void)edge;
    graph[key.first].push_back(key.second);
  }
  std::map<std::string, int> state;
  std::vector<std::string> stack;
  std::set<std::string> reported;
  std::function<void(const std::string&)> visit = [&](const std::string& m) {
    state[m] = 1;
    stack.push_back(m);
    for (const auto& next : graph[m]) {
      if (state[next] == 1) {
        // Found a cycle: next ... stack.back().
        auto at = std::find(stack.begin(), stack.end(), next);
        std::ostringstream desc;
        std::string first_file = "";
        int first_line = 0;
        std::string sig;
        for (auto it = at; it != stack.end(); ++it) {
          desc << *it << " -> ";
          sig += *it + "|";
        }
        desc << next;
        auto e = edges.find({stack.back(), next});
        if (e != edges.end()) {
          first_file = e->second.file;
          first_line = e->second.line;
        }
        if (reported.insert(sig).second) {
          std::string detail = "lock-order cycle (potential deadlock): " +
                               desc.str();
          for (auto it = at; it != stack.end(); ++it) {
            auto to = std::next(it) == stack.end() ? next : *std::next(it);
            auto ed = edges.find({*it, to});
            if (ed != edges.end()) {
              detail += "; " + ed->second.via + " (" + ed->second.file + ":" +
                        std::to_string(ed->second.line) + ")";
            }
          }
          out.push_back({first_file, first_line, "lock-order", detail});
        }
      } else if (state[next] == 0) {
        visit(next);
      }
    }
    stack.pop_back();
    state[m] = 2;
  };
  for (const auto& [m, targets] : graph) {
    (void)targets;
    if (state[m] == 0) visit(m);
  }
  return out;
}

// ---------------------------------------------------------------------------
// Rule: accounting (sanctioned distance entry points, exact charging)
// ---------------------------------------------------------------------------

bool InIndexDir(const std::string& top_dir) {
  return top_dir == "mtree" || top_dir == "vptree" || top_dir == "gnat" ||
         top_dir == "baseline";
}

std::vector<Violation> CheckAccounting(const Tree& tree) {
  std::vector<Violation> out;
  ProgramModel model = BuildModel(tree);

  // Map file path -> top dir for the functions we collected.
  std::map<std::string, std::string> dir_of;
  for (const auto& sf : tree.files) dir_of[sf.rel_path] = sf.top_dir;

  // (1) The sanctioned entry points are defined in engine/witness.h and
  // nowhere else — a shadow definition would silently fork the ledger.
  for (const auto& fn : model.functions) {
    if (fn.name == "GuardedDistanceWithin" ||
        fn.name == "GuardedExactDistance" ||
        fn.name == "CountedDistanceWithin") {
      if (fn.file.find("engine/witness.h") == std::string::npos) {
        out.push_back({fn.file, fn.line, "accounting",
                       "shadow definition of sanctioned entry point " +
                           fn.name +
                           " (the only definitions live in "
                           "src/mcm/engine/witness.h)"});
      }
    }
  }

  for (const auto& fn : model.functions) {
    auto dir = dir_of.find(fn.file);
    if (dir == dir_of.end() || !InIndexDir(dir->second)) continue;

    // (2) No direct BoundedDistance / DistanceWithin in index code.
    for (const auto& [line, name] : fn.banned_calls) {
      out.push_back({fn.file, line, "accounting",
                     "direct " + name + " call in index code (" +
                         fn.qualified +
                         "): prune-site evaluations must go through "
                         "GuardedDistanceWithin / GuardedExactDistance / "
                         "CountedDistanceWithin so every computed or "
                         "avoided distance is charged exactly once"});
    }

    // (3) Sanctioned calls must charge a real QueryStats (never nullptr).
    for (const auto& [line, last_arg] : fn.guarded_calls) {
      if (last_arg == "nullptr" || last_arg == "NULL") {
        out.push_back({fn.file, line, "accounting",
                       "sanctioned distance call in " + fn.qualified +
                           " passes a null QueryStats: the evaluation "
                           "would not be charged to any counter"});
      }
    }

    // (4) Exactly-one-charge: a stats-carrying index function that
    // evaluates the metric directly must pair every evaluation with one
    // distance_computations tick (the Dist()-helper discipline).
    if (fn.has_stats_param && fn.direct_metric_calls > 0 &&
        fn.charge_increments != fn.direct_metric_calls) {
      std::ostringstream msg;
      msg << fn.qualified << " evaluates the metric directly "
          << fn.direct_metric_calls << " time(s) but charges "
          << "distance_computations " << fn.charge_increments
          << " time(s); every direct evaluation in a stats-carrying "
          << "function must tick the ledger exactly once (or route "
          << "through the sanctioned entry points)";
      out.push_back(
          {fn.file, fn.first_metric_line, "accounting", msg.str()});
    }
  }
  return out;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

using RuleFn = std::vector<Violation> (*)(const Tree&);

const std::map<std::string, RuleFn>& Rules() {
  static const std::map<std::string, RuleFn> rules = {
      {"layering", &CheckLayering},
      {"lock-order", &CheckLockOrder},
      {"knobs", &CheckKnobs},
      {"accounting", &CheckAccounting},
  };
  return rules;
}

int RunRules(const fs::path& root, const std::vector<std::string>& names) {
  auto tree = ScanTree(root);
  if (!tree) return 2;
  int total = 0;
  size_t files = tree->files.size();
  for (const auto& name : names) {
    auto rule = Rules().find(name);
    if (rule == Rules().end()) {
      std::cerr << "error: unknown rule " << name << "\n";
      return 2;
    }
    std::vector<Violation> violations = rule->second(*tree);
    for (const auto& v : violations) {
      std::cerr << v.Format() << "\n";
    }
    total += static_cast<int>(violations.size());
  }
  if (total > 0) {
    std::cerr << total << " violation(s).\n";
    return 1;
  }
  std::cout << "OK: " << files << " files clean under ";
  for (size_t i = 0; i < names.size(); ++i) {
    std::cout << (i ? ", " : "") << names[i];
  }
  std::cout << ".\n";
  return 0;
}

// Self-test: every fixture dir is a mini repo root seeded with violations.
// Its EXPECTED file lists one substring per line; each must match at least
// one reported violation and the total count must equal the number of
// expectations (so the rule neither misses plants nor invents extras).
int RunSelfTest(const fs::path& fixtures) {
  struct Case {
    std::string dir;
    std::string rule;
  };
  const std::vector<Case> cases = {
      {"layering", "layering"},
      {"lock_order", "lock-order"},
      {"knobs", "knobs"},
      {"accounting", "accounting"},
  };
  int failures = 0;
  for (const auto& c : cases) {
    const fs::path root = fixtures / c.dir;
    auto tree = ScanTree(root);
    if (!tree) {
      std::cerr << "selftest: missing fixture " << root.string() << "\n";
      ++failures;
      continue;
    }
    std::vector<Violation> violations = Rules().at(c.rule)(*tree);
    std::vector<std::string> expectations;
    {
      std::ifstream in(root / "EXPECTED");
      std::string line;
      while (std::getline(in, line)) {
        if (!line.empty()) expectations.push_back(line);
      }
    }
    if (expectations.empty()) {
      std::cerr << "selftest[" << c.rule << "]: fixture has no EXPECTED "
                << "entries\n";
      ++failures;
      continue;
    }
    bool ok = true;
    for (const auto& expect : expectations) {
      bool found = false;
      for (const auto& v : violations) {
        if (v.Format().find(expect) != std::string::npos) {
          found = true;
          break;
        }
      }
      if (!found) {
        std::cerr << "selftest[" << c.rule << "]: planted violation not "
                  << "detected: " << expect << "\n";
        ok = false;
      }
    }
    if (violations.size() != expectations.size()) {
      std::cerr << "selftest[" << c.rule << "]: expected "
                << expectations.size() << " violation(s), got "
                << violations.size() << ":\n";
      for (const auto& v : violations) {
        std::cerr << "  " << v.Format() << "\n";
      }
      ok = false;
    }
    if (ok) {
      std::cout << "selftest[" << c.rule << "]: " << expectations.size()
                << " planted violation(s) detected, no extras.\n";
    } else {
      ++failures;
    }
  }
  if (failures > 0) {
    std::cerr << "selftest: " << failures << " fixture(s) failed.\n";
    return 1;
  }
  std::cout << "selftest OK.\n";
  return 0;
}

void Usage() {
  std::cerr
      << "usage: mcm_analyze --rule "
         "layering|lock-order|knobs|accounting --root <dir>\n"
         "       mcm_analyze --all --root <dir>\n"
         "       mcm_analyze --selftest <fixtures-dir>\n";
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> args(argv + 1, argv + argc);
  std::vector<std::string> rules;
  fs::path root;
  fs::path selftest;
  bool all = false;
  bool dump = false;
  for (size_t i = 0; i < args.size(); ++i) {
    if (args[i] == "--rule" && i + 1 < args.size()) {
      rules.push_back(args[++i]);
    } else if (args[i] == "--root" && i + 1 < args.size()) {
      root = args[++i];
    } else if (args[i] == "--all") {
      all = true;
    } else if (args[i] == "--dump") {
      dump = true;
    } else if (args[i] == "--selftest" && i + 1 < args.size()) {
      selftest = args[++i];
    } else {
      Usage();
      return 2;
    }
  }
  if (!selftest.empty()) {
    return RunSelfTest(selftest);
  }
  if (dump) {
    if (root.empty()) {
      Usage();
      return 2;
    }
    auto tree = ScanTree(root);
    if (!tree) return 2;
    DumpModel(*tree);
    return 0;
  }
  if (root.empty() || (rules.empty() && !all)) {
    Usage();
    return 2;
  }
  if (all) {
    rules.clear();
    for (const auto& [name, fn] : Rules()) {
      (void)fn;
      rules.push_back(name);
    }
  }
  return RunRules(root, rules);
}
