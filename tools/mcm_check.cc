// mcm_check: validates the structural invariants of a persisted M-tree
// (see src/mcm/check/). Usage:
//
//   mcm_check [--metric l2|l1|linf|edit] [--epsilon E] <index-path>
//       Opens <index-path> (+ <index-path>.meta, as written by SaveMTree)
//       and runs CheckMTree. Exit 0: the tree is consistent; exit 1:
//       violations (each printed as "[rule] where: detail"); exit 2:
//       usage or I/O error.
//
//   mcm_check --selftest <dir>
//       End-to-end proof that the checker detects corruption: builds a
//       small L2 tree (witness cascade installed), saves it under <dir>,
//       validates it (must be clean), shrinks a root covering radius
//       directly in the page file and re-validates (must report
//       covering-radius), then corrupts a persisted witness-cascade
//       ancestor distance in a second copy (must report
//       ancestor-distance). Exit 0 only when all phases behave.
//
//   mcm_check --bulk-selftest <dir>
//       End-to-end proof of the out-of-core parallel bulk loader: streams
//       100k clustered L2 vectors through StreamBulkLoader (4 build
//       threads, a deliberately tight ingest budget so the spill path is
//       exercised) into a paged on-disk store under <dir>, then requires
//       CheckMTree to come back clean and a probe query to find its own
//       object. Exit 0 only when the loaded tree is fully consistent.
//
// The metric must match the one the index was built with — the checker
// recomputes distances, so a wrong metric reports violations for a healthy
// tree (which is itself a useful property: it detects metric mismatch).

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "mcm/check/check_mtree.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/metric/string_metrics.h"
#include "mcm/metric/traits.h"
#include "mcm/metric/vector_metrics.h"
#include "mcm/mtree/bulk_stream.h"
#include "mcm/mtree/mtree.h"
#include "mcm/mtree/node_store.h"
#include "mcm/mtree/persist.h"
#include "mcm/storage/page_file.h"

namespace {

using mcm::check::CheckResult;

void PrintUsage() {
  std::fprintf(stderr,
               "usage: mcm_check [--metric l2|l1|linf|edit] [--epsilon E] "
               "<index-path>\n"
               "       mcm_check --selftest <dir>\n"
               "       mcm_check --bulk-selftest <dir>\n");
}

int Report(const CheckResult& result, const std::string& path) {
  if (result.ok()) {
    std::printf("%s: ok\n", path.c_str());
    return 0;
  }
  std::printf("%s: %zu violation(s)\n", path.c_str(),
              result.violations().size());
  for (const auto& v : result.violations()) {
    std::printf("  [%s] %s: %s\n", v.rule.c_str(), v.where.c_str(),
                v.detail.c_str());
  }
  return 1;
}

template <typename Traits>
int ValidateIndex(const std::string& path, typename Traits::Metric metric,
                  double epsilon) {
  const auto meta = mcm::persist_internal::ReadMeta(path);
  mcm::MTreeOptions options;
  options.node_size_bytes = meta.node_size;
  auto tree = mcm::OpenMTree<Traits>(path, std::move(metric), options);
  return Report(mcm::check::CheckMTree(tree, epsilon), path);
}

// Builds a small clustered L2 tree (root guaranteed internal at this size),
// saves it, checks clean, corrupts a root covering radius in place, and
// checks that the corruption is detected.
int SelfTest(const std::string& dir) {
  using Traits = mcm::VectorTraits<mcm::L2Distance>;
  const std::string path = dir + "/selftest.mtree";

  mcm::MTreeOptions options;
  options.node_size_bytes = 512;
  mcm::MTree<Traits> tree{mcm::L2Distance{}, options};
  const auto data = mcm::GenerateVectorDataset(
      mcm::VectorDatasetKind::kClustered, /*n=*/600, /*dim=*/4, /*seed=*/7);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(data[i], i);
  }
  // Persist the witness cascade so the healthy check also validates the
  // stored ancestor distances (and the corruption phase below has
  // something to corrupt).
  tree.InstallWitnessCascade();
  mcm::SaveMTree(tree, path);

  {
    auto reopened = mcm::OpenMTree<Traits>(path, mcm::L2Distance{}, options);
    const auto healthy = mcm::check::CheckMTree(reopened);
    if (!healthy.ok()) {
      std::fprintf(stderr, "selftest: healthy tree reported %s\n",
                   healthy.Summary().c_str());
      return 1;
    }
  }

  // Corrupt: shrink the first covering radius of the root node, on disk.
  const auto meta = mcm::persist_internal::ReadMeta(path);
  {
    mcm::PagedNodeStore<Traits> store(
        std::make_unique<mcm::StdioPageFile>(
            path, options.node_size_bytes,
            mcm::StdioPageFile::Mode::kOpenExisting),
        /*pool_frames=*/16);
    store.RestoreNodeCount(meta.num_nodes);
    auto root = store.Read(static_cast<mcm::NodeId>(meta.root));
    if (root.is_leaf || root.routing_entries.empty()) {
      std::fprintf(stderr, "selftest: root is not an internal node\n");
      return 1;
    }
    root.routing_entries[0].covering_radius *= 0.25;
    store.Write(static_cast<mcm::NodeId>(meta.root), root);
    store.Flush();
  }

  auto corrupted = mcm::OpenMTree<Traits>(path, mcm::L2Distance{}, options);
  const auto result = mcm::check::CheckMTree(corrupted);
  if (result.ok() || !result.Has("covering-radius")) {
    std::fprintf(stderr,
                 "selftest: corruption not detected (result: %s)\n",
                 result.Summary().c_str());
    return 1;
  }
  std::printf("selftest: corruption detected: %s\n",
              result.Summary(2).c_str());

  // Phase 3: a fresh copy with one persisted witness-cascade ancestor
  // distance perturbed must be flagged as ancestor-distance.
  const std::string wpath = dir + "/selftest_witness.mtree";
  mcm::SaveMTree(tree, wpath);
  const auto wmeta = mcm::persist_internal::ReadMeta(wpath);
  {
    mcm::PagedNodeStore<Traits> store(
        std::make_unique<mcm::StdioPageFile>(
            wpath, options.node_size_bytes,
            mcm::StdioPageFile::Mode::kOpenExisting),
        /*pool_frames=*/16);
    store.RestoreNodeCount(wmeta.num_nodes);
    // Find a node holding a non-empty ancestor array (depth >= 2 exists
    // whenever the tree has >= 3 levels) and perturb its first distance.
    bool corrupted_one = false;
    std::vector<mcm::NodeId> pending{static_cast<mcm::NodeId>(wmeta.root)};
    while (!pending.empty() && !corrupted_one) {
      const mcm::NodeId id = pending.back();
      pending.pop_back();
      auto node = store.Read(id);
      for (auto& e : node.leaf_entries) {
        if (!e.ancestor_distances.empty()) {
          e.ancestor_distances[0] += 1.0;
          corrupted_one = true;
          break;
        }
      }
      if (!corrupted_one) {
        for (auto& e : node.routing_entries) {
          if (!e.ancestor_distances.empty()) {
            e.ancestor_distances[0] += 1.0;
            corrupted_one = true;
            break;
          }
          pending.push_back(e.child);
        }
      }
      if (corrupted_one) {
        store.Write(id, node);
        store.Flush();
      }
    }
    if (!corrupted_one) {
      std::fprintf(stderr,
                   "selftest: no persisted ancestor distances to corrupt "
                   "(tree too shallow?)\n");
      return 1;
    }
  }
  auto wcorrupted = mcm::OpenMTree<Traits>(wpath, mcm::L2Distance{}, options);
  const auto wresult = mcm::check::CheckMTree(wcorrupted);
  if (wresult.ok() || !wresult.Has("ancestor-distance")) {
    std::fprintf(stderr,
                 "selftest: ancestor-distance corruption not detected "
                 "(result: %s)\n",
                 wresult.Summary().c_str());
    return 1;
  }
  std::printf("selftest: ancestor corruption detected: %s\n",
              wresult.Summary(2).c_str());
  return 0;
}

// Streams 100k clustered vectors through the out-of-core loader into a
// paged on-disk store and requires full structural consistency.
int BulkSelfTest(const std::string& dir) {
  using Traits = mcm::VectorTraits<mcm::L2Distance>;
  const std::string path = dir + "/bulk_selftest.mtree";

  const size_t n = 100000;
  const size_t dim = 8;
  const auto data = mcm::GenerateVectorDataset(
      mcm::VectorDatasetKind::kClustered, n, dim, /*seed=*/41);

  mcm::MTreeOptions options;
  options.node_size_bytes = 4096;
  options.build_threads = 4;
  auto store = std::make_unique<mcm::PagedNodeStore<Traits>>(
      std::make_unique<mcm::StdioPageFile>(path, options.node_size_bytes),
      /*pool_frames=*/256);
  mcm::VectorObjectSource<Traits> source(data);
  // ~4 MB budget against ~3.3 MB of leaf entries: forces the spill path.
  auto tree = mcm::StreamBulkLoader<Traits>::Load(
      source, mcm::L2Distance{}, options, std::move(store), dir,
      /*ingest_budget_bytes=*/4 << 20);

  if (tree.size() != n) {
    std::fprintf(stderr, "bulk-selftest: size %zu != %zu\n", tree.size(), n);
    return 1;
  }
  const auto result = mcm::check::CheckMTree(tree);
  if (!result.ok()) {
    std::fprintf(stderr, "bulk-selftest: streamed tree reported %s\n",
                 result.Summary().c_str());
    return 1;
  }
  const auto probe = tree.RangeSearch(data[n / 2], 0.0);
  bool found = false;
  for (const auto& hit : probe) {
    found = found || hit.oid == n / 2;
  }
  if (!found) {
    std::fprintf(stderr, "bulk-selftest: probe object not found\n");
    return 1;
  }
  std::printf("bulk-selftest: %zu objects, height %u, clean\n", n,
              tree.height());
  std::remove(path.c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string metric = "l2";
  std::string path;
  std::string selftest_dir;
  std::string bulk_selftest_dir;
  double epsilon = 1e-9;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metric" && i + 1 < argc) {
      metric = argv[++i];
    } else if (arg == "--epsilon" && i + 1 < argc) {
      epsilon = std::stod(argv[++i]);
    } else if (arg == "--selftest" && i + 1 < argc) {
      selftest_dir = argv[++i];
    } else if (arg == "--bulk-selftest" && i + 1 < argc) {
      bulk_selftest_dir = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mcm_check: unknown option %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      path = arg;
    }
  }

  try {
    if (!selftest_dir.empty()) {
      return SelfTest(selftest_dir);
    }
    if (!bulk_selftest_dir.empty()) {
      return BulkSelfTest(bulk_selftest_dir);
    }
    if (path.empty()) {
      PrintUsage();
      return 2;
    }
    if (metric == "l2") {
      return ValidateIndex<mcm::VectorTraits<mcm::L2Distance>>(
          path, mcm::L2Distance{}, epsilon);
    }
    if (metric == "l1") {
      return ValidateIndex<mcm::VectorTraits<mcm::L1Distance>>(
          path, mcm::L1Distance{}, epsilon);
    }
    if (metric == "linf") {
      return ValidateIndex<mcm::VectorTraits<mcm::LInfDistance>>(
          path, mcm::LInfDistance{}, epsilon);
    }
    if (metric == "edit") {
      return ValidateIndex<mcm::StringTraits<>>(
          path, mcm::EditDistanceMetric{}, epsilon);
    }
    std::fprintf(stderr, "mcm_check: unknown metric %s\n", metric.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcm_check: %s\n", e.what());
    return 2;
  }
}
