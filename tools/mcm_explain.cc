// mcm_explain: EXPLAIN for similarity queries on a persisted M-tree.
// Rebuilds the sampled distance distribution F̂ⁿ from the indexed objects,
// runs the N-MCM and L-MCM cost models plus the optimizer's access-path
// decision, executes the query fully instrumented (trace + phase spans),
// and prints predicted-vs-actual node accesses and distance computations
// per level next to the phase-time breakdown. Usage:
//
//   mcm_explain [--metric l2|l1|linf|edit] (--range R | --knn K)
//               [--query v1,v2,...|word] [--query-index I] [--json]
//               [--bins N] [--d-plus D] [--shards N] <index-path>
//       Opens <index-path> (+ <index-path>.meta, as written by SaveMTree)
//       and explains one query. The query object is either parsed from
//       --query (comma-separated floats for vector metrics, the literal
//       string for edit) or taken from the indexed objects (--query-index,
//       default 0). With --shards N (N >= 2) the indexed objects are
//       additionally re-partitioned into N shards and the query is routed
//       through the shard layer: the per-shard predicted-vs-actual table
//       follows the report (text), or rides under a "shards" key (JSON).
//       Exit 0 on success, 2 on usage or I/O error.
//
//   mcm_explain --make-demo <path>
//       Builds the small clustered L2 demo index used by the scripted
//       schema checks and saves it at <path>.
//
//   mcm_explain --selftest <dir>
//       Builds the demo index under <dir>, explains a range and a k-NN
//       query, and validates the reports (both models predicted, per-level
//       actuals consistent with totals, JSON parses). Exit 0 only when all
//       checks pass.
//
// The metric must match the one the index was built with; phase timers are
// forced on for the explained query regardless of MCM_OBS.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "mcm/cost/explain.h"
#include "mcm/dataset/vector_datasets.h"
#include "mcm/distribution/estimator.h"
#include "mcm/metric/string_metrics.h"
#include "mcm/metric/traits.h"
#include "mcm/metric/vector_metrics.h"
#include "mcm/mtree/mtree.h"
#include "mcm/mtree/persist.h"
#include "mcm/obs/export.h"
#include "mcm/obs/metrics.h"
#include "mcm/shard/explain.h"
#include "mcm/shard/router.h"
#include "mcm/shard/sharded_index.h"

namespace {

struct Args {
  std::string metric = "l2";
  std::string path;
  std::string query_text;
  std::string selftest_dir;
  std::string make_demo_path;
  size_t query_index = 0;
  double radius = -1.0;
  size_t k = 0;
  size_t bins = 100;
  size_t shards = 0;  // >= 2: also explain through the shard router.
  double d_plus = -1.0;  // < 0: derive from the data.
  bool json = false;
};

void PrintUsage() {
  std::fprintf(stderr,
               "usage: mcm_explain [--metric l2|l1|linf|edit] "
               "(--range R | --knn K)\n"
               "                   [--query v1,v2,...|word] "
               "[--query-index I] [--json]\n"
               "                   [--bins N] [--d-plus D] [--shards N] "
               "<index-path>\n"
               "       mcm_explain --make-demo <path>\n"
               "       mcm_explain --selftest <dir>\n");
}

/// Walks every leaf of `tree` and returns the indexed objects (the sample
/// the distance-distribution estimator runs over).
template <typename Tree>
std::vector<typename Tree::Object> CollectObjects(const Tree& tree) {
  std::vector<typename Tree::Object> out;
  if (tree.root() == mcm::kInvalidNodeId) return out;
  std::vector<mcm::NodeId> pending{tree.root()};
  while (!pending.empty()) {
    const mcm::NodeId id = pending.back();
    pending.pop_back();
    const auto node = tree.store().Read(id);
    if (node.is_leaf) {
      for (const auto& e : node.leaf_entries) out.push_back(e.object);
    } else {
      for (const auto& e : node.routing_entries) pending.push_back(e.child);
    }
  }
  return out;
}

/// Deterministic d⁺ estimate: the max distance over a strided sample of
/// object pairs, with 5% headroom so the histogram's last bin is not a
/// boundary artifact.
template <typename Object, typename Metric>
double DeriveDPlus(const std::vector<Object>& objects, const Metric& metric) {
  const size_t n = objects.size();
  const size_t stride = n > 128 ? n / 128 : 1;
  double max_d = 0.0;
  for (size_t i = 0; i < n; i += stride) {
    for (size_t j = i + stride; j < n; j += stride) {
      const double d = metric(objects[i], objects[j]);
      if (d > max_d) max_d = d;
    }
  }
  return max_d > 0.0 ? max_d * 1.05 : 1.0;
}

mcm::FloatVector ParseVector(const std::string& text) {
  mcm::FloatVector v;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t next = text.find(',', pos);
    if (next == std::string::npos) next = text.size();
    v.push_back(std::stof(text.substr(pos, next - pos)));
    pos = next + 1;
  }
  return v;
}

/// Inserts `"shards": <shard_json>` before the closing brace of the base
/// EXPLAIN JSON object so the sharded report rides along in one document.
std::string EmbedShardJson(const std::string& base,
                           const std::string& shard_json) {
  const size_t brace = base.rfind('}');
  if (brace == std::string::npos) return base;
  return base.substr(0, brace) + ",\"shards\":" + shard_json + "}";
}

/// Re-partitions the opened index's objects into `num_shards` shards and
/// explains the same query through the shard router.
template <typename Traits, typename Object, typename Metric>
mcm::shard::ShardExplainReport ExplainSharded(
    const std::vector<Object>& objects, const Metric& metric,
    size_t num_shards, size_t node_size_bytes, double d_plus,
    const Object& query, double radius, size_t k) {
  mcm::shard::ShardedOptions build;
  build.num_shards = num_shards;
  build.tree.node_size_bytes = node_size_bytes;
  build.d_plus = d_plus;
  const auto sharded =
      mcm::shard::ShardedMTree<Traits>::Create(objects, metric, build);
  const mcm::shard::ShardRouter<Traits> router(sharded);
  return radius >= 0.0 ? router.ExplainRange(query, radius)
                       : router.ExplainKnn(query, k);
}

template <typename Object>
Object ParseQuery(const std::string& text);

template <>
mcm::FloatVector ParseQuery<mcm::FloatVector>(const std::string& text) {
  return ParseVector(text);
}

template <>
std::string ParseQuery<std::string>(const std::string& text) {
  return text;
}

template <typename Traits, typename Metric>
int ExplainIndex(const Args& args, Metric metric) {
  const auto meta = mcm::persist_internal::ReadMeta(args.path);
  mcm::MTreeOptions options;
  options.node_size_bytes = meta.node_size;
  const auto tree =
      mcm::OpenMTree<Traits>(args.path, std::move(metric), options);

  const auto objects = CollectObjects(tree);
  if (objects.size() < 2) {
    std::fprintf(stderr, "mcm_explain: index holds %zu object(s); need >= 2\n",
                 objects.size());
    return 2;
  }

  const Metric& raw = tree.metric();
  const double d_plus =
      args.d_plus > 0.0 ? args.d_plus : DeriveDPlus(objects, raw);
  mcm::EstimatorOptions eo;
  eo.num_bins = args.bins;
  eo.d_plus = d_plus;
  const auto histogram = mcm::EstimateDistanceDistribution(objects, raw, eo);

  typename Traits::Object query;
  if (!args.query_text.empty()) {
    query = ParseQuery<typename Traits::Object>(args.query_text);
  } else {
    if (args.query_index >= objects.size()) {
      std::fprintf(stderr, "mcm_explain: --query-index %zu out of range\n",
                   args.query_index);
      return 2;
    }
    query = objects[args.query_index];
  }

  const mcm::ExplainReport report =
      args.radius >= 0.0
          ? mcm::ExplainRange(tree, histogram, d_plus, query, args.radius)
          : mcm::ExplainKnn(tree, histogram, d_plus, query, args.k);
  if (args.shards >= 2) {
    const auto shard_report = ExplainSharded<Traits>(
        objects, raw, args.shards, meta.node_size, d_plus, query,
        args.radius, args.k);
    if (args.json) {
      std::cout << EmbedShardJson(
                       mcm::RenderExplainJson(report),
                       mcm::shard::RenderShardExplainJson(shard_report))
                << "\n";
    } else {
      std::cout << mcm::RenderExplainText(report) << "\n"
                << mcm::shard::RenderShardExplainText(shard_report);
    }
    return 0;
  }
  if (args.json) {
    std::cout << mcm::RenderExplainJson(report) << "\n";
  } else {
    std::cout << mcm::RenderExplainText(report);
  }
  return 0;
}

/// Builds the demo index: clustered L2 vectors, small pages so the tree has
/// a few levels to explain.
int MakeDemo(const std::string& path) {
  using Traits = mcm::VectorTraits<mcm::L2Distance>;
  mcm::MTreeOptions options;
  options.node_size_bytes = 512;
  mcm::MTree<Traits> tree{mcm::L2Distance{}, options};
  const auto data = mcm::GenerateVectorDataset(
      mcm::VectorDatasetKind::kClustered, /*n=*/500, /*dim=*/4, /*seed=*/7);
  for (size_t i = 0; i < data.size(); ++i) {
    tree.Insert(data[i], i);
  }
  // Persist the witness cascade so EXPLAIN on the demo exercises the
  // witness-corrected prediction and the avoided-distance counters.
  tree.InstallWitnessCascade();
  mcm::SaveMTree(tree, path);
  std::printf("mcm_explain: wrote demo index %s (n=%zu height=%u)\n",
              path.c_str(), tree.size(), tree.height());
  return 0;
}

int Fail(const char* what) {
  std::fprintf(stderr, "selftest: %s\n", what);
  return 1;
}

int CheckReport(const mcm::ExplainReport& report) {
  if (report.predictions.size() < 2) return Fail("expected >= two models");
  if (report.predictions[0].model != "nmcm" ||
      report.predictions[1].model != "lmcm") {
    return Fail("model order");
  }
  for (const auto& p : report.predictions) {
    if (p.nodes <= 0.0 || p.distances <= 0.0) {
      return Fail("non-positive prediction");
    }
    if (p.level_nodes.empty() || p.level_distances.empty()) {
      return Fail("missing per-level prediction");
    }
  }
  // The demo index persists its witness cascade, so (unless the knob is
  // zeroed) the witness-corrected prediction rides along and never
  // predicts more evaluations than the uncorrected N-MCM.
  for (size_t i = 2; i < report.predictions.size(); ++i) {
    const auto& p = report.predictions[i];
    if (p.model != "nmcm.witness") return Fail("unexpected model name");
    if (p.distances > report.predictions[0].distances) {
      return Fail("witness correction predicts more distances than N-MCM");
    }
  }
  if (report.stats.nodes_accessed == 0) return Fail("no node accesses");
  if (report.num_results == 0) return Fail("no results");
  uint64_t level_nodes = 0;
  uint64_t level_dists = 0;
  uint64_t level_avoided = 0;
  for (const auto& a : report.level_actuals) {
    level_nodes += a.node_visits;
    level_dists += a.distances;
    level_avoided += a.witness_avoided;
  }
  if (level_nodes != report.stats.nodes_accessed) {
    return Fail("per-level node visits do not sum to the total");
  }
  if (level_dists != report.stats.distance_computations) {
    return Fail("per-level distances do not sum to the total");
  }
  if (level_avoided != report.stats.distance_calcs_avoided_by_witness) {
    return Fail("per-level witness avoidance does not sum to the total");
  }
  if (report.access_path.empty()) return Fail("no access path");
  const auto parsed = mcm::ParseJson(mcm::RenderExplainJson(report));
  if (!parsed.has_value() || !parsed->is_object()) {
    return Fail("JSON rendering does not parse");
  }
  for (const char* key :
       {"kind", "index", "plan", "predictions", "actual", "phase_us"}) {
    if (parsed->Find(key) == nullptr) return Fail("JSON missing key");
  }
  return 0;
}

int SelfTest(const std::string& dir) {
  using Traits = mcm::VectorTraits<mcm::L2Distance>;
  const std::string path = dir + "/explain_demo.mtree";
  if (MakeDemo(path) != 0) return 1;

  const auto meta = mcm::persist_internal::ReadMeta(path);
  mcm::MTreeOptions options;
  options.node_size_bytes = meta.node_size;
  const auto tree =
      mcm::OpenMTree<Traits>(path, mcm::L2Distance{}, options);
  const auto objects = CollectObjects(tree);
  if (objects.size() != 500) return Fail("demo object count");

  const double d_plus = DeriveDPlus(objects, tree.metric());
  mcm::EstimatorOptions eo;
  eo.d_plus = d_plus;
  const auto histogram = mcm::EstimateDistanceDistribution(
      objects, tree.metric(), eo);

  if (!tree.cascade_installed()) return Fail("demo cascade not persisted");

  const auto range_report = mcm::ExplainRange(
      tree, histogram, d_plus, objects[0], 0.25 * d_plus);
  if (range_report.kind != "range") return Fail("range kind");
  if (const int rc = CheckReport(range_report)) return rc;
  if (tree.witness_capacity() > 0) {
    bool witness_predicted = false;
    for (const auto& p : range_report.predictions) {
      witness_predicted |= p.model == "nmcm.witness";
    }
    if (!witness_predicted) return Fail("witness prediction missing");
  }

  const auto knn_report =
      mcm::ExplainKnn(tree, histogram, d_plus, objects[1], /*k=*/5);
  if (knn_report.kind != "knn") return Fail("knn kind");
  if (knn_report.num_results != 5) return Fail("knn result count");
  if (const int rc = CheckReport(knn_report)) return rc;

  // Sharded EXPLAIN: route the same range query through 4 shards and
  // require per-row actuals to sum to the totals, the dispatched/skipped
  // split to cover every shard, the sharded answer to match the unsharded
  // result count, and the JSON embedding to parse.
  const double radius = 0.25 * d_plus;
  const auto shard_report = ExplainSharded<Traits>(
      objects, tree.metric(), /*num_shards=*/4, meta.node_size, d_plus,
      objects[0], radius, /*k=*/0);
  if (shard_report.kind != "range") return Fail("shard kind");
  if (shard_report.num_shards != 4) return Fail("shard count");
  if (shard_report.rows.size() != 4) return Fail("shard row count");
  if (shard_report.dispatched + shard_report.skipped != 4) {
    return Fail("shard dispatch/skip split");
  }
  uint64_t row_nodes = 0;
  uint64_t row_dists = 0;
  size_t row_results = 0;
  for (const auto& row : shard_report.rows) {
    row_nodes += row.actual_nodes;
    row_dists += row.actual_dists;
    row_results += row.results;
  }
  if (row_nodes != shard_report.actual_nodes) {
    return Fail("shard row nodes do not sum to the total");
  }
  if (row_results != shard_report.results) {
    return Fail("shard row results do not sum to the total");
  }
  if (row_dists > shard_report.actual_dists) {
    return Fail("shard row distances exceed the total");
  }
  if (shard_report.results != range_report.num_results) {
    return Fail("sharded result count differs from unsharded");
  }
  const auto shard_json = mcm::ParseJson(EmbedShardJson(
      mcm::RenderExplainJson(range_report),
      mcm::shard::RenderShardExplainJson(shard_report)));
  if (!shard_json.has_value() || !shard_json->is_object() ||
      shard_json->Find("shards") == nullptr) {
    return Fail("shard JSON embedding does not parse");
  }

  std::printf(
      "selftest: ok (range + knn + 4-shard scatter explained, "
      "reports consistent)\n");
  std::fputs(mcm::RenderExplainText(knn_report).c_str(), stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--metric" && i + 1 < argc) {
      args.metric = argv[++i];
    } else if (arg == "--range" && i + 1 < argc) {
      args.radius = std::stod(argv[++i]);
    } else if (arg == "--knn" && i + 1 < argc) {
      args.k = static_cast<size_t>(std::stoul(argv[++i]));
    } else if (arg == "--query" && i + 1 < argc) {
      args.query_text = argv[++i];
    } else if (arg == "--query-index" && i + 1 < argc) {
      args.query_index = static_cast<size_t>(std::stoul(argv[++i]));
    } else if (arg == "--bins" && i + 1 < argc) {
      args.bins = static_cast<size_t>(std::stoul(argv[++i]));
    } else if (arg == "--d-plus" && i + 1 < argc) {
      args.d_plus = std::stod(argv[++i]);
    } else if (arg == "--shards" && i + 1 < argc) {
      args.shards = static_cast<size_t>(std::stoul(argv[++i]));
    } else if (arg == "--json") {
      args.json = true;
    } else if (arg == "--selftest" && i + 1 < argc) {
      args.selftest_dir = argv[++i];
    } else if (arg == "--make-demo" && i + 1 < argc) {
      args.make_demo_path = argv[++i];
    } else if (arg == "--help" || arg == "-h") {
      PrintUsage();
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "mcm_explain: unknown option %s\n", arg.c_str());
      PrintUsage();
      return 2;
    } else {
      args.path = arg;
    }
  }

  // EXPLAIN is pointless without its timers: force the observability flag
  // on for this process (single-threaded here, so the setter is safe).
  mcm::SetObsEnabled(true);

  try {
    if (!args.selftest_dir.empty()) {
      return SelfTest(args.selftest_dir);
    }
    if (!args.make_demo_path.empty()) {
      return MakeDemo(args.make_demo_path);
    }
    if (args.path.empty() || (args.radius < 0.0 && args.k == 0)) {
      PrintUsage();
      return 2;
    }
    if (args.metric == "l2") {
      return ExplainIndex<mcm::VectorTraits<mcm::L2Distance>>(
          args, mcm::L2Distance{});
    }
    if (args.metric == "l1") {
      return ExplainIndex<mcm::VectorTraits<mcm::L1Distance>>(
          args, mcm::L1Distance{});
    }
    if (args.metric == "linf") {
      return ExplainIndex<mcm::VectorTraits<mcm::LInfDistance>>(
          args, mcm::LInfDistance{});
    }
    if (args.metric == "edit") {
      return ExplainIndex<mcm::StringTraits<>>(args,
                                               mcm::EditDistanceMetric{});
    }
    std::fprintf(stderr, "mcm_explain: unknown metric %s\n",
                 args.metric.c_str());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "mcm_explain: %s\n", e.what());
    return 2;
  }
}
